#include "serve/replication_wire.h"

#include <cstring>

#include "util/net.h"

namespace simgraph {
namespace serve {
namespace {

constexpr size_t kFrameHeaderBytes = 4 + 1;  // u32 length + u8 type
constexpr uint64_t kMaxReplicaNameBytes = 256;

template <typename T>
void AppendRaw(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(uint64_t max_bytes, std::string* out) {
    uint64_t size = 0;
    if (!Read(&size)) return false;
    if (size > max_bytes || size > bytes_.size() - pos_) return false;
    out->assign(bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("SGRP: ") + what);
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(ReplicationFrameType::kHello) &&
         type <= static_cast<uint8_t>(ReplicationFrameType::kBye);
}

}  // namespace

void ReplicaHello::SerializeTo(std::string* out) const {
  AppendRaw<uint32_t>(out, kReplicationMagic);
  AppendRaw<uint16_t>(out, version);
  AppendRaw<uint8_t>(out, want_snapshot ? 1 : 0);
  AppendRaw<uint64_t>(out, applied_seq);
  AppendRaw<uint64_t>(out, name.size());
  out->append(name);
}

Status ReplicaHello::Parse(std::string_view bytes, ReplicaHello* out) {
  Reader reader(bytes);
  uint32_t magic = 0;
  uint8_t want = 0;
  if (!reader.Read(&magic)) return Corrupt("hello truncated");
  if (magic != kReplicationMagic) return Corrupt("bad hello magic");
  if (!reader.Read(&out->version) || !reader.Read(&want) ||
      !reader.Read(&out->applied_seq) ||
      !reader.ReadString(kMaxReplicaNameBytes, &out->name) ||
      !reader.AtEnd()) {
    return Corrupt("hello malformed");
  }
  if (out->version != kReplicationVersion) {
    return Corrupt("unsupported hello version");
  }
  out->want_snapshot = want != 0;
  return Status::Ok();
}

void ReplicaHelloAck::SerializeTo(std::string* out) const {
  AppendRaw<uint32_t>(out, kReplicationMagic);
  AppendRaw<uint16_t>(out, version);
  AppendRaw<uint8_t>(out, snapshot_follows ? 1 : 0);
  AppendRaw<uint64_t>(out, built_seq);
  AppendRaw<uint64_t>(out, graph_epoch);
  AppendRaw<int64_t>(out, graph_edges);
}

Status ReplicaHelloAck::Parse(std::string_view bytes, ReplicaHelloAck* out) {
  Reader reader(bytes);
  uint32_t magic = 0;
  uint8_t follows = 0;
  if (!reader.Read(&magic)) return Corrupt("hello_ack truncated");
  if (magic != kReplicationMagic) return Corrupt("bad hello_ack magic");
  if (!reader.Read(&out->version) || !reader.Read(&follows) ||
      !reader.Read(&out->built_seq) || !reader.Read(&out->graph_epoch) ||
      !reader.Read(&out->graph_edges) || !reader.AtEnd()) {
    return Corrupt("hello_ack malformed");
  }
  if (out->version != kReplicationVersion) {
    return Corrupt("unsupported hello_ack version");
  }
  out->snapshot_follows = follows != 0;
  return Status::Ok();
}

std::string BuildReplicationFrame(ReplicationFrameType type,
                                  std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendRaw<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  AppendRaw<uint8_t>(&frame, static_cast<uint8_t>(type));
  frame.append(payload);
  return frame;
}

Status WriteReplicationFrame(int fd, ReplicationFrameType type,
                             std::string_view payload) {
  const std::string frame = BuildReplicationFrame(type, payload);
  if (!net::SendAll(fd, frame.data(), frame.size())) {
    return Status::IoError("SGRP: send failed");
  }
  return Status::Ok();
}

Status ReadReplicationFrame(int fd, ReplicationFrameType* type,
                            std::string* payload, uint64_t max_bytes) {
  char header[kFrameHeaderBytes];
  if (!net::RecvAll(fd, header, sizeof(header))) {
    return Status::IoError("SGRP: connection closed");
  }
  uint32_t length = 0;
  std::memcpy(&length, header, sizeof(length));
  const uint8_t raw_type = static_cast<uint8_t>(header[4]);
  if (!ValidFrameType(raw_type)) return Corrupt("unknown frame type");
  if (length > max_bytes) return Corrupt("frame exceeds size cap");
  *type = static_cast<ReplicationFrameType>(raw_type);
  payload->resize(length);
  if (length > 0 && !net::RecvAll(fd, payload->data(), length)) {
    return Status::IoError("SGRP: truncated frame");
  }
  return Status::Ok();
}

std::string EncodeReplicationAck(uint64_t applied_seq) {
  std::string payload;
  AppendRaw<uint64_t>(&payload, applied_seq);
  return payload;
}

Status DecodeReplicationAck(std::string_view payload, uint64_t* applied_seq) {
  Reader reader(payload);
  if (!reader.Read(applied_seq) || !reader.AtEnd()) {
    return Corrupt("ack malformed");
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace simgraph
