#ifndef SIMGRAPH_SERVE_REPLICATION_WIRE_H_
#define SIMGRAPH_SERVE_REPLICATION_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace simgraph {
namespace serve {

/// SGRP — the replication session protocol between the delta builder
/// and remote shard replicas (docs/replication.md). It carries the
/// existing SGDL delta encoding (core/simgraph_delta.h) and raw SGCS
/// snapshot images (docs/store.md) inside length-prefixed frames:
///
///   u32 LE payload length | u8 frame type | payload bytes
///
/// Frames flow both ways on one TCP connection: the replica opens it,
/// sends HELLO, the builder answers HELLO_ACK (optionally followed by a
/// SNAPSHOT bootstrap image), then streams DELTA frames forever while
/// the replica sends ACK frames back. Either side may close with BYE;
/// the builder rejects a broken handshake with ERROR.
///
/// Like the SGDL parser, every decoder here treats the peer as hostile:
/// lengths are capped, magic/version are checked, and a malformed frame
/// fails the session instead of the process.
enum class ReplicationFrameType : uint8_t {
  kHello = 1,     // replica -> builder: handshake + bootstrap request
  kHelloAck = 2,  // builder -> replica: accepted; builder's position
  kSnapshot = 3,  // builder -> replica: raw SGCS image bytes
  kDelta = 4,     // builder -> replica: one serialized SimGraphDelta
  kAck = 5,       // replica -> builder: u64 LE applied sequence number
  kError = 6,     // builder -> replica: handshake rejected (utf8 reason)
  kBye = 7,       // either way: clean shutdown
};

/// "SGRP" little-endian, leading the HELLO payload so the builder can
/// vet that the peer actually speaks this protocol (a port scanner or a
/// misdirected NDJSON client fails here, not deep in delta parsing).
inline constexpr uint32_t kReplicationMagic = 0x50524753;
inline constexpr uint16_t kReplicationVersion = 1;

/// Hard per-frame cap. Deltas are KBs; snapshot images are the only
/// large frames and a 1 GiB SGCS image is far beyond anything this repo
/// generates. A hostile length prefix past this fails the session
/// before any allocation happens.
inline constexpr uint64_t kMaxReplicationFrameBytes = 1ull << 30;

/// HELLO payload: who the replica is and where it stands. applied_seq
/// is the last event sequence the replica has applied (0 for a cold
/// start); the builder replays every retained delta past it. A replica
/// with no local SGCS image sets want_snapshot and receives the
/// builder's image as a SNAPSHOT frame right after HELLO_ACK.
struct ReplicaHello {
  uint16_t version = kReplicationVersion;
  bool want_snapshot = false;
  uint64_t applied_seq = 0;
  std::string name;  // for logs/metrics; bounded at parse time

  void SerializeTo(std::string* out) const;
  static Status Parse(std::string_view bytes, ReplicaHello* out);
};

/// HELLO_ACK payload: the builder's position at registration time. The
/// replica seeds its graph stats (epoch/edges) from here — refresh
/// deltas carry the epoch forward but a remote replica never holds the
/// snapshot object itself.
struct ReplicaHelloAck {
  uint16_t version = kReplicationVersion;
  bool snapshot_follows = false;
  uint64_t built_seq = 0;
  uint64_t graph_epoch = 0;
  int64_t graph_edges = 0;

  void SerializeTo(std::string* out) const;
  static Status Parse(std::string_view bytes, ReplicaHelloAck* out);
};

/// Frames a payload: 5-byte header + payload, ready to send.
std::string BuildReplicationFrame(ReplicationFrameType type,
                                  std::string_view payload);

/// Blocking frame IO over a connected socket. WriteFrame sends header +
/// payload; ReadFrame reads exactly one frame, rejecting unknown types
/// and lengths beyond `max_bytes`. ReadFrame returns IoError on EOF or
/// socket error and InvalidArgument on a malformed frame.
Status WriteReplicationFrame(int fd, ReplicationFrameType type,
                             std::string_view payload);
Status ReadReplicationFrame(int fd, ReplicationFrameType* type,
                            std::string* payload,
                            uint64_t max_bytes = kMaxReplicationFrameBytes);

/// ACK payload helpers (u64 LE applied sequence).
std::string EncodeReplicationAck(uint64_t applied_seq);
Status DecodeReplicationAck(std::string_view payload, uint64_t* applied_seq);

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_REPLICATION_WIRE_H_
