#ifndef SIMGRAPH_SERVE_DELTA_APPLIER_H_
#define SIMGRAPH_SERVE_DELTA_APPLIER_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "core/simgraph.h"
#include "core/simgraph_delta.h"
#include "serve/candidate_state.h"
#include "serve/serving_recommender.h"
#include "store/graph_image.h"
#include "util/metrics.h"

namespace simgraph {
namespace serve {

/// Configuration of a delta-applying shard replica. Must match the
/// builder's ServingSimGraphOptions where the fields overlap, or the
/// replica's answers diverge from the builder's state.
struct DeltaApplierOptions {
  Timestamp freshness_window = 72 * kSecondsPerHour;
  int32_t num_stripes = 64;
  /// When serving image-backed (docs/store.md), every applier shard pins
  /// the SAME shared mmap'd graph image here — shards never decode it on
  /// the hot path (deltas carry everything they replay), but pinning
  /// keeps the map alive for the shard's whole life and lets Train
  /// cross-check the dataset population against the image.
  std::shared_ptr<const store::GraphImage> graph_image;
};

/// The cheap shard-side half of the delta-shipping ingest pipeline
/// (docs/ingest.md): where a replicated shard re-runs the entire
/// incremental SimGraph update per event, a DeltaApplierRecommender only
/// replays the compact op stream the DeltaBuilder recorded — candidate
/// deposits, consumed marks, an occasional eviction watermark, and
/// snapshot epoch swaps — so its per-event cost is O(ops shipped), not
/// O(incremental update + propagation).
///
/// Replica determinism: Train builds the same CandidateState every
/// replica starts from (training retweets consumed, empty candidates),
/// and deltas are applied in sequence order by the shard's single
/// applier thread, so all shards and the builder hold bit-identical
/// candidate state at every delta boundary
/// (tests/serve/delta_equivalence_test.cc proves it against per-shard
/// recompute).
///
/// ObserveAffected CHECK-fails: a delta shard never sees raw events.
class DeltaApplierRecommender final : public ServingRecommender {
 public:
  explicit DeltaApplierRecommender(DeltaApplierOptions options = {});

  std::string name() const override { return "DeltaApplier"; }

  /// Builds the initial candidate replica. Cheap — no similarity graph
  /// is built here; that is the whole point of the pipeline.
  Status Train(const Dataset& dataset, int64_t train_end) override;

  /// Installs the builder's post-train CSR snapshot so Stats report
  /// graph epoch/edges. Call after Train, before serving.
  void SeedSnapshot(std::shared_ptr<const SimGraph> snapshot,
                    uint64_t epoch);

  /// Remote replicas (docs/replication.md) never hold the builder's
  /// snapshot object: seed the stats the handshake reported instead.
  /// Refresh deltas then carry graph_epoch_ forward on their own; the
  /// edge count stays the handshake's last-known value.
  void SeedRemoteGraphStats(uint64_t epoch, int64_t edges);

  AffectedUsers ObserveAffected(const RetweetEvent& event) override;
  AffectedUsers ApplyDelta(const SimGraphDelta& delta) override;
  void BindShard(int32_t shard) override;
  std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                     int32_t k) override;
  RecommendOutcome RecommendUntil(
      UserId user, Timestamp now, int32_t k,
      std::chrono::steady_clock::time_point deadline) override;
  bool concurrent_reads() const override { return true; }
  bool GraphStats(uint64_t* epoch, int64_t* edges) const override;

  /// The snapshot this shard currently reports (last epoch swap).
  std::shared_ptr<const SimGraph> GraphSnapshot() const;
  uint64_t graph_epoch() const;
  /// Sequence number of the last applied delta's seq_end (0 initially).
  uint64_t applied_delta_seq() const { return applied_delta_seq_; }

 private:
  DeltaApplierOptions options_;
  CandidateState state_;
  uint64_t applied_delta_seq_ = 0;  // applier-thread only

  /// Guards snapshot_ / epoch_ publication (swapped on refresh deltas,
  /// read by Stats from any thread).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const SimGraph> snapshot_;
  uint64_t graph_epoch_ = 0;
  /// Remote-seeded stats (SeedRemoteGraphStats): GraphStats falls back
  /// to these when no snapshot object is held.
  bool remote_stats_ = false;
  int64_t remote_edges_ = 0;

  // Shard-qualified delta-apply histogram, cached by BindShard; null
  // outside sharded deployments.
  metrics::LatencyHistogram* shard_apply_us_ = nullptr;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_DELTA_APPLIER_H_
