#include "serve/replication_fanout.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <sstream>
#include <utility>

#include "serve/replication_wire.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/net.h"

namespace simgraph {
namespace serve {

ReplicationFanout::ReplicationFanout(ReplicationFanoutOptions options)
    : options_(std::move(options)),
      snapshot_path_(options_.snapshot_path),
      snapshot_seq_(options_.snapshot_seq) {
  SIMGRAPH_CHECK_GT(options_.max_lag_events, 0);
  SIMGRAPH_CHECK_GT(options_.delta_log_capacity, 0);
}

ReplicationFanout::~ReplicationFanout() { Stop(); }

Status ReplicationFanout::Start() {
  StatusOr<int> fd = net::ListenLoopback(options_.port, &port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ReplicationFanout::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& replica : replicas_) {
      if (replica->fd >= 0) ::shutdown(replica->fd, SHUT_RDWR);
      replica->cv.notify_all();
    }
    ack_cv_.notify_all();
  }
  std::vector<Session> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (Session& session : sessions) {
    if (session.thread.joinable()) session.thread.join();
  }
  listen_fd_ = -1;
}

void ReplicationFanout::SeedGraphStats(uint64_t epoch, int64_t edges) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_graph_epoch_ = epoch;
  seed_graph_edges_ = edges;
}

void ReplicationFanout::UpdateSnapshot(const std::string& path,
                                       uint64_t seq) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_path_ = path;
  snapshot_seq_ = seq;
  snapshot_cache_ = nullptr;
}

void ReplicationFanout::ShipDelta(const SimGraphDelta& delta) {
  std::string payload;
  delta.SerializeTo(&payload);
  auto framed = std::make_shared<const std::string>(
      BuildReplicationFrame(ReplicationFrameType::kDelta, payload));

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t prev_built = built_seq_.load();
  if (delta.seq_end > prev_built) built_seq_.store(delta.seq_end);
  log_.push_back(LogEntry{delta.seq_begin, delta.seq_end, framed});
  while (static_cast<int64_t>(log_.size()) > options_.delta_log_capacity) {
    trimmed_through_seq_ = log_.front().seq_end;
    log_.pop_front();
  }
  const uint64_t built = built_seq_.load();
  const auto now = std::chrono::steady_clock::now();
  for (const auto& replica : replicas_) {
    if (!replica->live) continue;
    // A replica with nothing outstanding was healthy right up to this
    // delta: restart its stall clock here. Without this, a publish-idle
    // gap longer than ack_stall_timeout_ms would read as an ack stall
    // the instant the stream resumes.
    if (replica->acked >= prev_built) replica->last_progress = now;
    // The bounded-lag cutoff: a replica that trails the builder by more
    // than max_lag_events is degraded here, on the builder's tap, so
    // ingest never waits on it (docs/replication.md).
    if (LagCutoffLocked(*replica, built)) {
      DegradeLocked(replica.get(), "lag cutoff exceeded");
      continue;
    }
    replica->outbox.push_back(framed);
    replica->cv.notify_all();
  }
  UpdateGaugesLocked();
}

uint64_t ReplicationFanout::MinAckedSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_acked = UINT64_MAX;
  for (const auto& replica : replicas_) {
    if (replica->live) min_acked = std::min(min_acked, replica->acked);
  }
  return min_acked;
}

void ReplicationFanout::WaitForAcked(uint64_t seq) {
  const auto stall =
      std::chrono::milliseconds(options_.ack_stall_timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_.load()) return;
    bool outstanding = false;
    const auto now = std::chrono::steady_clock::now();
    for (const auto& replica : replicas_) {
      if (!replica->live || replica->acked >= seq) continue;
      // The wall-clock backstop: lag in events cannot grow while the
      // stream is paused, so a replica that stalls right before the
      // pause would otherwise pin this wait forever. last_progress is
      // refreshed whenever the replica is caught up, so only time spent
      // sitting on outstanding work counts toward the stall.
      if (options_.ack_stall_timeout_ms > 0 &&
          now - replica->last_progress >= stall) {
        DegradeLocked(replica.get(), "ack stall timeout");
        UpdateGaugesLocked();
        continue;
      }
      outstanding = true;
    }
    if (!outstanding) return;
    ack_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

bool ReplicationFanout::WaitForReplicas(int32_t count,
                                        std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    int32_t live = 0;
    for (const auto& replica : replicas_) {
      if (replica->live) ++live;
    }
    if (live >= count) return true;
    if (stopping_.load() ||
        ack_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return false;
    }
  }
}

int32_t ReplicationFanout::num_live() const {
  std::lock_guard<std::mutex> lock(mu_);
  int32_t live = 0;
  for (const auto& replica : replicas_) {
    if (replica->live) ++live;
  }
  return live;
}

int64_t ReplicationFanout::num_degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_total_;
}

int64_t ReplicationFanout::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int64_t>(sessions_.size());
}

void ReplicationFanout::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    // Reap finished sessions before tracking a new one: a long-running
    // builder sees endless handshake rejects, disconnects, and rejoins,
    // and deferring every join to Stop would leak a thread per each.
    ReapSessionsLocked();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, fd, done] {
      RunSession(fd);
      done->store(true);
    });
    sessions_.push_back(Session{std::move(thread), std::move(done)});
  }
}

void ReplicationFanout::ReapSessionsLocked() {
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    if (it->done->load()) {
      it->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplicationFanout::RunSession(int fd) {
  // Handshake under a receive deadline: a connection that never says
  // HELLO (port scanner, wrong protocol) is shed, not collected.
  net::SetRecvTimeout(fd, options_.handshake_timeout_ms);
  ReplicationFrameType type;
  std::string payload;
  ReplicaHello hello;
  Status status = ReadReplicationFrame(fd, &type, &payload);
  if (status.ok() && type != ReplicationFrameType::kHello) {
    status = Status::InvalidArgument("expected HELLO");
  }
  if (status.ok()) status = ReplicaHello::Parse(payload, &hello);
  if (!status.ok()) {
    SIMGRAPH_COUNTER_ADD("serve.replication.handshake_rejects", 1);
    WriteReplicationFrame(fd, ReplicationFrameType::kError,
                          status.message());
    ::close(fd);
    return;
  }
  net::SetRecvTimeout(fd, 0);

  // Pin the bootstrap image before registering: the resume position
  // derived from it and the bytes shipped later must come from the same
  // image generation even if UpdateSnapshot runs concurrently. An
  // offered-but-unreadable image is a handshake reject, not a
  // mid-session surprise.
  std::shared_ptr<const SnapshotImage> snap;
  if (hello.want_snapshot && SnapshotOffered()) {
    snap = Snapshot();
    if (snap == nullptr) {
      SIMGRAPH_COUNTER_ADD("serve.replication.handshake_rejects", 1);
      WriteReplicationFrame(fd, ReplicationFrameType::kError,
                            "snapshot image unreadable");
      ::close(fd);
      return;
    }
  }
  // A snapshot bootstrapper restarts from the image, so it resumes at
  // the sequence the image covers, not at its HELLO position.
  const uint64_t resume_seq =
      snap != nullptr ? std::max(hello.applied_seq, snap->seq)
                      : hello.applied_seq;

  auto replica = std::make_shared<Replica>();
  replica->fd = fd;
  replica->name = hello.name.empty() ? "replica" : hello.name;
  ReplicaHelloAck ack;
  int64_t backlog = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    if (trimmed_through_seq_ > resume_seq) {
      // The retained log no longer covers this replica's position. Be
      // honest about whether a retry can succeed: a snapshot bootstrap
      // only helps if the offered image covers the trimmed prefix.
      SIMGRAPH_COUNTER_ADD("serve.replication.handshake_rejects", 1);
      std::ostringstream msg;
      msg << "bootstrap gap: resume position " << resume_seq
          << " predates the retained delta log (trimmed through "
          << trimmed_through_seq_ << "); ";
      uint64_t snapshot_seq = 0;
      if (!SnapshotOffered(&snapshot_seq)) {
        msg << "no snapshot bootstrap is offered, so this replica "
               "cannot join until the builder restarts or serves an "
               "image";
      } else if (snapshot_seq < trimmed_through_seq_) {
        msg << "the offered bootstrap image covers only seq "
            << snapshot_seq
            << ", which the log has also outrun — cold join cannot "
               "succeed until the builder refreshes its replication "
               "image";
      } else {
        msg << "rejoin with a snapshot bootstrap (want_snapshot)";
      }
      WriteReplicationFrame(fd, ReplicationFrameType::kError, msg.str());
      ::close(fd);
      return;
    }
    replica->acked = resume_seq;
    replica->last_progress = std::chrono::steady_clock::now();
    replica->join_built_seq = built_seq_.load();
    replica->live = true;
    ack.built_seq = built_seq_.load();
    ack.graph_epoch = seed_graph_epoch_;
    ack.graph_edges = seed_graph_edges_;
    ack.snapshot_follows = snap != nullptr;
    // Registration and backlog replay under one lock hold: every delta
    // shipped before this point with seq_end past the replica's
    // position is replayed from the log, every later one lands in the
    // outbox — no gap, no duplicate.
    for (const LogEntry& entry : log_) {
      if (entry.seq_end <= resume_seq) continue;
      replica->outbox.push_back(entry.framed);
      ++backlog;
    }
    replicas_.push_back(replica);
    UpdateGaugesLocked();
    ack_cv_.notify_all();
  }
  SIMGRAPH_COUNTER_ADD("serve.replication.connects", 1);
  if (backlog > 0) {
    SIMGRAPH_COUNTER_ADD("serve.replication.bootstrap_deltas",
                         static_cast<double>(backlog));
  }
  SIMGRAPH_LOG(Info) << "replication: replica '" << replica->name
                     << "' joined at seq " << resume_seq << " ("
                     << backlog << " backlog deltas"
                     << (ack.snapshot_follows ? ", snapshot bootstrap" : "")
                     << ")";

  net::SetSendTimeout(fd, options_.send_timeout_ms);
  std::string ack_payload;
  ack.SerializeTo(&ack_payload);
  bool session_ok =
      SendFrameChecked(replica, BuildReplicationFrame(
                                    ReplicationFrameType::kHelloAck,
                                    ack_payload));
  if (session_ok && snap != nullptr) {
    session_ok = SendFrameChecked(
        replica, BuildReplicationFrame(ReplicationFrameType::kSnapshot,
                                       *snap->bytes));
    if (session_ok) {
      SIMGRAPH_COUNTER_ADD("serve.replication.snapshot_bytes_sent",
                           static_cast<double>(snap->bytes->size()));
    }
  }

  std::thread reader;
  if (session_ok) {
    reader = std::thread([this, replica] { ReadAcks(replica); });
  }

  // Sender loop: drain the outbox in ship order. Everything this
  // session sends goes through this one thread, so HELLO_ACK, the
  // snapshot, the backlog, and live deltas arrive strictly ordered.
  while (session_ok) {
    std::shared_ptr<const std::string> frame;
    {
      std::unique_lock<std::mutex> lock(mu_);
      replica->cv.wait(lock, [&] {
        return stopping_.load() || replica->degraded || !replica->live ||
               !replica->outbox.empty();
      });
      if (stopping_.load() || replica->degraded || !replica->live) break;
      frame = replica->outbox.front();
      replica->outbox.pop_front();
    }
    if (!SendFrameChecked(replica, *frame)) break;
    SIMGRAPH_COUNTER_ADD("serve.replication.deltas_sent", 1);
    SIMGRAPH_COUNTER_ADD("serve.replication.bytes_sent",
                         static_cast<double>(frame->size()));
  }

  if (stopping_.load() && !replica->degraded) {
    WriteReplicationFrame(fd, ReplicationFrameType::kBye, "");
  }
  ::shutdown(fd, SHUT_RDWR);
  if (reader.joinable()) reader.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (replica->live) {
      replica->live = false;
      if (!stopping_.load()) {
        SIMGRAPH_COUNTER_ADD("serve.replication.disconnects", 1);
      }
    }
    replicas_.erase(
        std::remove(replicas_.begin(), replicas_.end(), replica),
        replicas_.end());
    UpdateGaugesLocked();
    ack_cv_.notify_all();
  }
  ::close(fd);
}

void ReplicationFanout::ReadAcks(const std::shared_ptr<Replica>& replica) {
  for (;;) {
    ReplicationFrameType type;
    std::string payload;
    if (!ReadReplicationFrame(replica->fd, &type, &payload).ok()) break;
    if (type == ReplicationFrameType::kBye) break;
    if (type != ReplicationFrameType::kAck) continue;
    uint64_t acked = 0;
    if (!DecodeReplicationAck(payload, &acked).ok()) break;
    std::lock_guard<std::mutex> lock(mu_);
    if (acked > replica->acked) {
      replica->acked = acked;
      replica->last_progress = std::chrono::steady_clock::now();
      UpdateGaugesLocked();
      ack_cv_.notify_all();
    }
  }
  // Peer closed or misbehaved: end the session so the sender stops
  // queueing into a black hole.
  std::lock_guard<std::mutex> lock(mu_);
  if (replica->live && !replica->degraded && !stopping_.load()) {
    replica->live = false;
    SIMGRAPH_COUNTER_ADD("serve.replication.disconnects", 1);
    UpdateGaugesLocked();
  }
  replica->cv.notify_all();
  ack_cv_.notify_all();
}

bool ReplicationFanout::SendFrameChecked(
    const std::shared_ptr<Replica>& replica, const std::string& frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(replica->fd, frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && net::LastErrorWasTimeout()) {
      // Socket buffer full past SO_SNDTIMEO: the replica is not
      // reading. Re-check the cutoff instead of blocking forever.
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load() || replica->degraded || !replica->live) {
        return false;
      }
      if (LagCutoffLocked(*replica, built_seq_.load())) {
        DegradeLocked(replica.get(), "lag cutoff exceeded (send stalled)");
        UpdateGaugesLocked();
        return false;
      }
      continue;
    }
    return false;
  }
  return true;
}

bool ReplicationFanout::LagCutoffLocked(const Replica& replica,
                                        uint64_t built) const {
  // A joiner still draining its handshake backlog is exempt: its lag IS
  // the join gap by construction and shrinks as it drains, so degrading
  // it would make bootstrap of a far-behind replica impossible while
  // the stream is live. The ack-stall backstop still covers a drainer
  // that stops making progress.
  if (replica.acked < replica.join_built_seq) return false;
  const uint64_t lag = built > replica.acked ? built - replica.acked : 0;
  return lag > static_cast<uint64_t>(options_.max_lag_events);
}

void ReplicationFanout::DegradeLocked(Replica* replica, const char* reason) {
  if (replica->degraded || !replica->live) return;
  replica->degraded = true;
  replica->live = false;
  replica->outbox.clear();
  ++degraded_total_;
  SIMGRAPH_COUNTER_ADD("serve.replication.degraded", 1);
  SIMGRAPH_LOG(Warning) << "replication: replica '" << replica->name
                        << "' degraded (" << reason << "): acked "
                        << replica->acked << " vs built "
                        << built_seq_.load();
  // Sever the socket so the sender/reader unblock; the replica process
  // sees EOF and can rejoin through the normal late-join handshake.
  if (replica->fd >= 0) ::shutdown(replica->fd, SHUT_RDWR);
  replica->cv.notify_all();
  ack_cv_.notify_all();
}

void ReplicationFanout::UpdateGaugesLocked() {
  int32_t live = 0;
  uint64_t min_acked = UINT64_MAX;
  for (const auto& replica : replicas_) {
    if (!replica->live) continue;
    ++live;
    min_acked = std::min(min_acked, replica->acked);
  }
  SIMGRAPH_GAUGE_SET("serve.replication.replicas",
                     static_cast<double>(live));
  if (live > 0) {
    const uint64_t built = built_seq_.load();
    SIMGRAPH_GAUGE_SET("serve.replication.min_acked_seq",
                       static_cast<double>(min_acked));
    SIMGRAPH_GAUGE_SET(
        "serve.replication.lag_events",
        static_cast<double>(built > min_acked ? built - min_acked : 0));
  }
}

std::shared_ptr<const ReplicationFanout::SnapshotImage>
ReplicationFanout::Snapshot() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_path_.empty()) return nullptr;
  if (snapshot_cache_ != nullptr) return snapshot_cache_;
  std::ifstream in(snapshot_path_, std::ios::binary);
  if (!in) return nullptr;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return nullptr;
  auto image = std::make_shared<SnapshotImage>();
  image->bytes = std::make_shared<const std::string>(buffer.str());
  image->seq = snapshot_seq_;
  snapshot_cache_ = std::move(image);
  return snapshot_cache_;
}

bool ReplicationFanout::SnapshotOffered(uint64_t* seq) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (seq != nullptr) *seq = snapshot_seq_;
  return !snapshot_path_.empty();
}

}  // namespace serve
}  // namespace simgraph
