#ifndef SIMGRAPH_SERVE_DELTA_BUILDER_H_
#define SIMGRAPH_SERVE_DELTA_BUILDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/simgraph_delta.h"
#include "serve/service.h"
#include "serve/simgraph_serving_recommender.h"
#include "util/mpmc_queue.h"

namespace simgraph {
namespace serve {

struct DeltaBuilderOptions {
  /// Capacity of the global ingestion queue; Publish blocks when full
  /// (backpressure propagates to publishers, exactly as on an unsharded
  /// service).
  int64_t queue_capacity = 4096;
  /// Upper bound of events folded into one delta. After popping the
  /// first event the builder opportunistically drains up to this many
  /// queued events into the same delta, so a backlog amortises the
  /// per-delta fan-out cost. 1 disables batching.
  int64_t max_batch_events = 16;
  /// Test/replication tap: called on the builder thread with every
  /// finalised delta before fan-out (the wire-format equivalence test
  /// serialises from here; a future RPC transport would too).
  std::function<void(const SimGraphDelta&)> delta_observer;
};

/// The single-writer stage of the delta-shipping ingest pipeline
/// (docs/ingest.md). One builder thread owns the global event queue:
///
///   publishers --> [global queue] --> BuildLoop --> shard 0..N-1 queues
///
/// In delta mode (`source` != null) the loop pops an event batch, runs
/// the incremental SimGraph update ONCE on the source recommender while
/// recording a SimGraphDelta, and fans the finished delta out to every
/// shard — shards replay O(ops) instead of each re-running the update.
/// In replicated mode (`source` == null, the legacy path kept for
/// generic recommenders and old-vs-new A/B benches) the loop forwards
/// each raw event to every shard unchanged; there is no mutex around
/// the fan-out because this one thread is the only shard publisher, so
/// per-shard queue order — and therefore the lockstep sequence
/// numbering — is preserved by construction.
///
/// Sequence numbers: the global queue's push ticket + 1 is THE global
/// sequence number returned by Publish; the single consumer pops in
/// ticket order, so it re-derives each event's number by counting.
/// Fan-out stamps the covered seq (delta: seq_end) on every forwarded
/// item, and shards jump their applied counter to it — AppliedSeq
/// semantics (per-shard applied seq, global = min, WaitForApplied) are
/// exactly the replicated path's.
class DeltaBuilder {
 public:
  /// `source` (delta mode) and `shards` must outlive this object; the
  /// shard services must be Started before this builder.
  DeltaBuilder(SimGraphServingRecommender* source,
               std::vector<RecommendationService*> shards,
               DeltaBuilderOptions options = {});
  ~DeltaBuilder();

  DeltaBuilder(const DeltaBuilder&) = delete;
  DeltaBuilder& operator=(const DeltaBuilder&) = delete;

  /// Starts the builder thread. Idempotent.
  void Start();

  /// Closes the queue, builds/forwards everything still buffered, and
  /// joins the thread. Idempotent. Call before stopping the shards.
  void Stop();

  /// Enqueues one event; blocks while the queue is full. Returns its
  /// global sequence number (1-based), 0 when stopped.
  uint64_t Publish(const RetweetEvent& event);

  bool delta_mode() const { return source_ != nullptr; }

  /// Sequence number of the last event folded into a shipped delta (or
  /// forwarded raw event). Applied shard state trails this.
  uint64_t built_seq() const {
    return built_seq_.load(std::memory_order_relaxed);
  }

  /// Crash-recovery test hooks: CrashForTest makes the builder thread
  /// exit at the next batch boundary WITHOUT draining (simulating a
  /// builder crash with events still queued; its state is consistent —
  /// deltas are only shipped whole). Recover restarts the loop, which
  /// resumes from the exact queue position, so no event is lost or
  /// double-built.
  void CrashForTest();
  void Recover();

 private:
  void BuildLoop();
  /// Builds one delta from `first` plus up to max_batch_events - 1 more
  /// queued events, runs the observer, and fans it out. False when a
  /// shard rejected the forward (stopped) — the loop exits.
  bool BuildAndShip(IngestItem first);
  /// Replicated mode: forwards one raw event to every shard.
  bool Forward(IngestItem item);
  void RecordQueueWait(const IngestItem& item);

  SimGraphServingRecommender* source_;  // null = replicated mode
  std::vector<RecommendationService*> shards_;
  DeltaBuilderOptions options_;
  BoundedMpmcQueue<IngestItem> queue_;
  std::thread builder_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> crash_requested_{false};
  /// Events popped so far == the global sequence number of the last
  /// popped event (single consumer pops in ticket order).
  uint64_t consumed_seq_ = 0;  // builder-thread only (incl. Recover join)
  /// Event popped but not yet processed when a simulated crash fired;
  /// Recover's restarted loop resumes with it (same thread-ownership
  /// rule as consumed_seq_).
  std::optional<IngestItem> pending_;
  std::atomic<uint64_t> built_seq_{0};
  /// Scratch reused across batches so steady-state building does not
  /// reallocate op vectors.
  SimGraphDelta scratch_;  // builder-thread only
  /// High-water mark of the global queue depth.
  std::atomic<int64_t> queue_depth_max_{0};
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_DELTA_BUILDER_H_
