#include "serve/simgraph_serving_recommender.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {
namespace {

/// Deadline checks happen once per this many candidates scanned, keeping
/// the steady_clock overhead off the per-candidate fast path.
constexpr int64_t kDeadlineCheckStride = 128;

bool Better(const ScoredTweet& a, const ScoredTweet& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.tweet < b.tweet;
}

}  // namespace

SimGraphServingRecommender::SimGraphServingRecommender(
    ServingSimGraphOptions options)
    : options_(std::move(options)) {
  SIMGRAPH_CHECK_GT(options_.num_stripes, 0);
  SIMGRAPH_CHECK_GT(options_.evict_every, 0);
}

Status SimGraphServingRecommender::Train(const Dataset& dataset,
                                         int64_t train_end) {
  if (train_end < 0 || train_end > dataset.num_retweets()) {
    return Status::InvalidArgument("train_end out of range");
  }
  num_users_ = dataset.num_users();
  incremental_ = std::make_unique<IncrementalSimGraph>(dataset.follow_graph,
                                                       options_.graph);
  SIMGRAPH_RETURN_IF_ERROR(incremental_->Initialize(dataset, train_end));
  RefreshSnapshot();

  std::vector<Timestamp> tweet_times;
  tweet_times.reserve(dataset.tweets.size());
  tweet_author_.clear();
  tweet_author_.reserve(dataset.tweets.size());
  for (const Tweet& t : dataset.tweets) {
    tweet_times.push_back(t.time);
    tweet_author_.push_back(t.author);
  }
  candidates_ = std::make_unique<CandidateStore>(
      num_users_, std::move(tweet_times), options_.freshness_window);

  stripes_.clear();
  const size_t num_stripes = std::min<size_t>(
      static_cast<size_t>(options_.num_stripes),
      std::max<size_t>(1, static_cast<size_t>(num_users_)));
  stripes_.reserve(num_stripes);
  for (size_t i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<std::shared_mutex>());
  }

  // Mirror SimGraphRecommender::Train: training retweets are consumed,
  // and seed sets of tweets still fresh at the split carry over.
  const Timestamp split_time =
      train_end > 0 ? dataset.retweets[static_cast<size_t>(train_end - 1)].time
                    : 0;
  tweet_state_.clear();
  for (int64_t i = 0; i < train_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    candidates_->MarkConsumed(e.user, e.tweet);
    const Timestamp tweet_time =
        dataset.tweets[static_cast<size_t>(e.tweet)].time;
    if (tweet_time + options_.freshness_window >= split_time) {
      tweet_state_[e.tweet].seeds.push_back(e.user);
    }
  }
  observed_ = 0;
  num_propagations_ = 0;
  return Status::Ok();
}

void SimGraphServingRecommender::RefreshSnapshot() {
  SIMGRAPH_TRACE_SPAN("SimGraphServingRecommender::RefreshSnapshot", "serve");
  auto snapshot = std::make_shared<const SimGraph>(incremental_->Snapshot());
  auto propagator = std::make_unique<Propagator>(*snapshot);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
    propagator_ = std::move(propagator);
    ++graph_epoch_;
    SIMGRAPH_GAUGE_SET("serve.snapshot.epoch",
                       static_cast<double>(graph_epoch_));
  }
  SIMGRAPH_COUNTER_ADD("serve.snapshot.refreshes", 1);
}

void SimGraphServingRecommender::BindShard(int32_t shard) {
  if (shard < 0) return;
  shard_propagation_us_ = &metrics::Registry::Global().histogram(
      metrics::ShardMetricName("serve.apply.propagation_us", shard));
}

AffectedUsers SimGraphServingRecommender::ObserveAffected(
    const RetweetEvent& event) {
  SIMGRAPH_CHECK(candidates_ != nullptr) << "Train must be called first";
  AffectedUsers affected;

  // The similarity graph absorbs every event, known tweet or not: new
  // posts keep shaping user-user similarity even before they are part of
  // the recommendable catalogue.
  incremental_->Apply(event);
  ++observed_;
  if (options_.snapshot_refresh_events > 0 &&
      observed_ % options_.snapshot_refresh_events == 0) {
    SIMGRAPH_SCOPED_LATENCY("serve.snapshot.refresh_seconds");
    RefreshSnapshot();
  }

  if (event.tweet < 0 ||
      event.tweet >= static_cast<int64_t>(tweet_author_.size())) {
    // Unknown to the tweet catalogue: no author/timestamp, so it cannot
    // be recommended yet; only the graph learned from it.
    SIMGRAPH_COUNTER_ADD("serve.ingest.unknown_tweets", 1);
    return affected;
  }

  const UserId author = tweet_author_[static_cast<size_t>(event.tweet)];
  {
    std::unique_lock<std::shared_mutex> lock(StripeOf(event.user));
    candidates_->MarkConsumed(event.user, event.tweet);
  }
  affected.users.push_back(event.user);
  {
    std::unique_lock<std::shared_mutex> lock(StripeOf(author));
    candidates_->MarkConsumed(author, event.tweet);
  }
  affected.users.push_back(author);

  TweetState& state = tweet_state_[event.tweet];
  state.seeds.push_back(event.user);

  const bool metrics_on = metrics::Enabled();
  WallTimer propagation_timer;
  propagator_->PropagateInto(state.seeds,
                             static_cast<int64_t>(state.seeds.size()),
                             options_.propagation, propagation_scratch_,
                             &propagation_result_);
  if (metrics_on) {
    const double us = propagation_timer.ElapsedSeconds() * 1e6;
    SIMGRAPH_HISTOGRAM_RECORD("serve.apply.propagation_us", us);
    if (shard_propagation_us_ != nullptr) shard_propagation_us_->Record(us);
  }
  const PropagationResult& result = propagation_result_;
  ++num_propagations_;
  for (const UserScore& us : result.scores) {
    if (us.score < options_.min_deposit_score) continue;
    std::unique_lock<std::shared_mutex> lock(StripeOf(us.user));
    if (candidates_->Deposit(us.user, event.tweet, us.score)) {
      affected.users.push_back(us.user);
    }
  }

  // Stale candidates are invisible to TopK, so evicting them never
  // changes an answer — no invalidation needed.
  if (observed_ % options_.evict_every == 0) {
    for (UserId u = 0; u < num_users_; ++u) {
      std::unique_lock<std::shared_mutex> lock(StripeOf(u));
      candidates_->EvictStaleForUser(u, event.time);
    }
  }

  std::sort(affected.users.begin(), affected.users.end());
  affected.users.erase(
      std::unique(affected.users.begin(), affected.users.end()),
      affected.users.end());
  return affected;
}

std::vector<ScoredTweet> SimGraphServingRecommender::Recommend(UserId user,
                                                               Timestamp now,
                                                               int32_t k) {
  return RecommendUntil(user, now, k,
                        std::chrono::steady_clock::time_point::max())
      .tweets;
}

RecommendOutcome SimGraphServingRecommender::RecommendUntil(
    UserId user, Timestamp now, int32_t k,
    std::chrono::steady_clock::time_point deadline) {
  SIMGRAPH_CHECK(candidates_ != nullptr) << "Train must be called first";
  RecommendOutcome outcome;
  std::shared_lock<std::shared_mutex> lock(StripeOf(user), std::defer_lock);
  {
    // Time spent waiting for the candidate stripe (contended with the
    // applier depositing scores) shows as its own request stage.
    SIMGRAPH_TRACE_SPAN("request/snapshot_pin", "serve");
    lock.lock();
  }
  SIMGRAPH_TRACE_SPAN("request/candidate_scoring", "serve");
  const auto& raw = candidates_->CandidatesOf(user);
  std::vector<ScoredTweet> fresh;
  fresh.reserve(std::min<size_t>(raw.size(), 1024));
  int64_t scanned = 0;
  for (const auto& [tweet, score] : raw) {
    if (scanned++ % kDeadlineCheckStride == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      outcome.complete = false;
      break;
    }
    if (score > 0.0 && candidates_->IsFresh(tweet, now) &&
        candidates_->TweetTime(tweet) <= now) {
      fresh.push_back(ScoredTweet{tweet, score});
    }
  }
  lock.unlock();
  if (static_cast<int64_t>(fresh.size()) > k) {
    std::partial_sort(fresh.begin(), fresh.begin() + k, fresh.end(), Better);
    fresh.resize(static_cast<size_t>(k));
  } else {
    std::sort(fresh.begin(), fresh.end(), Better);
  }
  outcome.tweets = std::move(fresh);
  return outcome;
}

std::shared_ptr<const SimGraph> SimGraphServingRecommender::GraphSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t SimGraphServingRecommender::graph_epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return graph_epoch_;
}

}  // namespace serve
}  // namespace simgraph
