#include "serve/simgraph_serving_recommender.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {

SimGraphServingRecommender::SimGraphServingRecommender(
    ServingSimGraphOptions options)
    : options_(std::move(options)) {
  SIMGRAPH_CHECK_GT(options_.num_stripes, 0);
  SIMGRAPH_CHECK_GT(options_.evict_every, 0);
}

Status SimGraphServingRecommender::Train(const Dataset& dataset,
                                         int64_t train_end) {
  if (train_end < 0 || train_end > dataset.num_retweets()) {
    return Status::InvalidArgument("train_end out of range");
  }
  // The follow graph is either carried by the dataset or pinned
  // out-of-band as an mmap'd SGCS image every shard shares.
  const Digraph& follow_graph = options_.graph_image != nullptr
                                    ? options_.graph_image->graph()
                                    : dataset.follow_graph;
  if (options_.graph_image != nullptr && dataset.num_users() != 0 &&
      dataset.num_users() != follow_graph.num_nodes()) {
    return Status::InvalidArgument(
        "dataset population disagrees with the bound graph image");
  }
  num_users_ = follow_graph.num_nodes();
  incremental_ =
      std::make_unique<IncrementalSimGraph>(follow_graph, options_.graph);
  SIMGRAPH_RETURN_IF_ERROR(incremental_->Initialize(dataset, train_end));
  RefreshSnapshot();

  tweet_author_.clear();
  tweet_author_.reserve(dataset.tweets.size());
  for (const Tweet& t : dataset.tweets) tweet_author_.push_back(t.author);
  SIMGRAPH_RETURN_IF_ERROR(state_.Init(dataset, train_end,
                                       options_.freshness_window,
                                       options_.num_stripes));

  // Mirror SimGraphRecommender::Train: training retweets are consumed
  // (CandidateState::Init did that), and seed sets of tweets still fresh
  // at the split carry over.
  const Timestamp split_time =
      train_end > 0 ? dataset.retweets[static_cast<size_t>(train_end - 1)].time
                    : 0;
  tweet_state_.clear();
  for (int64_t i = 0; i < train_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    const Timestamp tweet_time =
        dataset.tweets[static_cast<size_t>(e.tweet)].time;
    if (tweet_time + options_.freshness_window >= split_time) {
      tweet_state_[e.tweet].seeds.push_back(e.user);
    }
  }
  observed_ = 0;
  num_propagations_ = 0;
  return Status::Ok();
}

void SimGraphServingRecommender::RefreshSnapshot() {
  SIMGRAPH_TRACE_SPAN("SimGraphServingRecommender::RefreshSnapshot", "serve");
  auto snapshot = std::make_shared<const SimGraph>(incremental_->Snapshot());
  auto propagator = std::make_unique<Propagator>(*snapshot);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
    propagator_ = std::move(propagator);
    ++graph_epoch_;
    SIMGRAPH_GAUGE_SET("serve.snapshot.epoch",
                       static_cast<double>(graph_epoch_));
  }
  SIMGRAPH_COUNTER_ADD("serve.snapshot.refreshes", 1);
}

void SimGraphServingRecommender::BindShard(int32_t shard) {
  if (shard < 0) return;
  shard_propagation_us_ = &metrics::Registry::Global().histogram(
      metrics::ShardMetricName("serve.apply.propagation_us", shard));
}

AffectedUsers SimGraphServingRecommender::ObserveAffected(
    const RetweetEvent& event) {
  return ObserveRecordingDelta(event, nullptr);
}

AffectedUsers SimGraphServingRecommender::ObserveRecordingDelta(
    const RetweetEvent& event, SimGraphDelta* delta) {
  SIMGRAPH_CHECK(state_.initialized()) << "Train must be called first";
  AffectedUsers affected;

  // The similarity graph absorbs every event, known tweet or not: new
  // posts keep shaping user-user similarity even before they are part of
  // the recommendable catalogue.
  incremental_->Apply(event, delta);
  ++observed_;
  if (options_.snapshot_refresh_events > 0 &&
      observed_ % options_.snapshot_refresh_events == 0) {
    SIMGRAPH_SCOPED_LATENCY("serve.snapshot.refresh_seconds");
    RefreshSnapshot();
    if (delta != nullptr) {
      delta->flags |= SimGraphDelta::kFlagSnapshotRefresh;
      delta->snapshot_epoch = graph_epoch();
      delta->snapshot = GraphSnapshot();
    }
  }

  if (event.tweet < 0 ||
      event.tweet >= static_cast<int64_t>(tweet_author_.size())) {
    // Unknown to the tweet catalogue: no author/timestamp, so it cannot
    // be recommended yet; only the graph learned from it.
    SIMGRAPH_COUNTER_ADD("serve.ingest.unknown_tweets", 1);
    return affected;
  }

  const UserId author = tweet_author_[static_cast<size_t>(event.tweet)];
  state_.MarkConsumed(event.user, event.tweet);
  affected.users.push_back(event.user);
  state_.MarkConsumed(author, event.tweet);
  affected.users.push_back(author);
  if (delta != nullptr) {
    delta->consumed.push_back({event.user, event.tweet});
    delta->consumed.push_back({author, event.tweet});
  }

  TweetState& state = tweet_state_[event.tweet];
  state.seeds.push_back(event.user);

  const bool metrics_on = metrics::Enabled();
  WallTimer propagation_timer;
  propagator_->PropagateInto(state.seeds,
                             static_cast<int64_t>(state.seeds.size()),
                             options_.propagation, propagation_scratch_,
                             &propagation_result_);
  if (metrics_on) {
    const double us = propagation_timer.ElapsedSeconds() * 1e6;
    SIMGRAPH_HISTOGRAM_RECORD("serve.apply.propagation_us", us);
    if (shard_propagation_us_ != nullptr) shard_propagation_us_->Record(us);
  }
  const PropagationResult& result = propagation_result_;
  ++num_propagations_;
  for (const UserScore& us : result.scores) {
    if (us.score < options_.min_deposit_score) continue;
    if (state_.Deposit(us.user, event.tweet, us.score)) {
      affected.users.push_back(us.user);
      if (delta != nullptr) {
        delta->deposits.push_back({us.user, event.tweet, us.score});
      }
    }
  }

  // Stale candidates are invisible to TopK, so evicting them never
  // changes an answer — no invalidation needed.
  if (observed_ % options_.evict_every == 0) {
    state_.EvictStale(event.time);
    if (delta != nullptr) delta->evict_before = event.time;
  }

  std::sort(affected.users.begin(), affected.users.end());
  affected.users.erase(
      std::unique(affected.users.begin(), affected.users.end()),
      affected.users.end());
  if (delta != nullptr) {
    delta->invalidated.insert(delta->invalidated.end(),
                              affected.users.begin(), affected.users.end());
  }
  return affected;
}

std::vector<ScoredTweet> SimGraphServingRecommender::Recommend(UserId user,
                                                               Timestamp now,
                                                               int32_t k) {
  return RecommendUntil(user, now, k,
                        std::chrono::steady_clock::time_point::max())
      .tweets;
}

RecommendOutcome SimGraphServingRecommender::RecommendUntil(
    UserId user, Timestamp now, int32_t k,
    std::chrono::steady_clock::time_point deadline) {
  SIMGRAPH_CHECK(state_.initialized()) << "Train must be called first";
  return state_.ScanTopK(user, now, k, deadline);
}

std::shared_ptr<const SimGraph> SimGraphServingRecommender::GraphSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t SimGraphServingRecommender::graph_epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return graph_epoch_;
}

bool SimGraphServingRecommender::GraphStats(uint64_t* epoch,
                                            int64_t* edges) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ == nullptr) return false;
  *epoch = graph_epoch_;
  *edges = snapshot_->graph.num_edges();
  return true;
}

}  // namespace serve
}  // namespace simgraph
