#ifndef SIMGRAPH_SERVE_CANDIDATE_STATE_H_
#define SIMGRAPH_SERVE_CANDIDATE_STATE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/candidate_store.h"
#include "core/simgraph_delta.h"
#include "dataset/dataset.h"
#include "serve/serving_recommender.h"
#include "util/status.h"

namespace simgraph {
namespace serve {

/// The striped per-user candidate/consumed state every serving replica
/// carries, extracted from SimGraphServingRecommender so the delta
/// pipeline's cheap DeltaApplier shards share the exact read path (and
/// the exact mutation semantics — replicas applying the same ordered
/// ops stay bit-identical) with the full builder recommender.
///
/// Threading model: one ingest thread calls the mutators; any number of
/// reader threads call ScanTopK concurrently. A user's state is guarded
/// by the stripe lock of their id, taken exclusively for writes and
/// shared for reads.
class CandidateState {
 public:
  /// Builds the store over the dataset's tweet catalogue, creates
  /// min(num_stripes, num_users) stripes, and marks every training
  /// retweet consumed — the state every replica starts from. Image-backed
  /// datasets report their population via Dataset::num_users_hint.
  Status Init(const Dataset& dataset, int64_t train_end,
              Timestamp freshness_window, int32_t num_stripes);

  bool initialized() const { return store_ != nullptr; }
  int32_t num_users() const { return num_users_; }

  /// Marks `user` consumed `tweet` (never recommended to them again).
  void MarkConsumed(UserId user, TweetId tweet);

  /// Raises the stored score (max-merge); true when it actually changed.
  bool Deposit(UserId user, TweetId tweet, double score);

  /// Drops candidates stale at `now` for every user. Stale candidates
  /// are invisible to ScanTopK, so this never changes an answer — it
  /// only bounds memory.
  void EvictStale(Timestamp now);

  /// Replays a builder-recorded delta's candidate ops — consumed marks,
  /// then deposits — taking each stripe lock once instead of once per
  /// op. A delta carries thousands of deposits, so this is the applier
  /// hot path; per-op locking would make replay cost rival the full
  /// update it replaces. Bit-identical to the per-op sequence: ops on
  /// different users never interact, StripeOf is a pure function of the
  /// user, and bucketing by stripe keeps every user's ops in recorded
  /// order (all consumed marks before any deposit, as the builder
  /// mutated its own state). The eviction sweep is NOT replayed here —
  /// callers check `delta.evict_before` and call EvictStale themselves.
  void ReplayDeltaOps(const SimGraphDelta& delta);

  /// Deadline-aware top-k scan over the user's fresh, unconsumed
  /// candidates; best first, ties broken by tweet id.
  RecommendOutcome ScanTopK(UserId user, Timestamp now, int32_t k,
                            std::chrono::steady_clock::time_point deadline)
      const;

  /// The underlying store (callers must hold the user's stripe).
  CandidateStore& store() { return *store_; }
  std::shared_mutex& StripeOf(UserId user) const {
    return *stripes_[static_cast<size_t>(user) % stripes_.size()];
  }

 private:
  std::unique_ptr<CandidateStore> store_;
  std::vector<std::unique_ptr<std::shared_mutex>> stripes_;
  int32_t num_users_ = 0;
  // Scratch for ReplayDeltaOps: op indices bucketed by stripe, reused
  // across deltas to avoid reallocation. Safe unsynchronized because
  // only the single ingest thread mutates this state (see class doc).
  std::vector<std::vector<uint32_t>> consumed_by_stripe_;
  std::vector<std::vector<uint32_t>> deposits_by_stripe_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_CANDIDATE_STATE_H_
