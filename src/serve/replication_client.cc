#include "serve/replication_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <memory>
#include <utility>

#include "core/simgraph_delta.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/net.h"

namespace simgraph {
namespace serve {

ReplicationClient::ReplicationClient(ReplicationClientOptions options)
    : options_(std::move(options)) {}

ReplicationClient::~ReplicationClient() { Stop(); }

Status ReplicationClient::Connect(uint64_t applied_seq,
                                  ReplicationBootstrap* bootstrap) {
  SIMGRAPH_CHECK(fd_ < 0) << "Connect may only be called once";
  StatusOr<int> fd =
      net::ConnectLoopback(options_.port, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  // Handshake under a receive deadline: without it a peer that accepts
  // but never responds wedges the replica process inside Connect.
  net::SetRecvTimeout(fd_, options_.handshake_timeout_ms);

  ReplicaHello hello;
  hello.want_snapshot = options_.want_snapshot;
  hello.applied_seq = applied_seq;
  hello.name = options_.name;
  std::string payload;
  hello.SerializeTo(&payload);
  Status status =
      WriteReplicationFrame(fd_, ReplicationFrameType::kHello, payload);
  ReplicationFrameType type;
  if (status.ok()) status = ReadReplicationFrame(fd_, &type, &payload);
  if (status.ok() && type == ReplicationFrameType::kError) {
    status = Status::FailedPrecondition("builder rejected handshake: " +
                                        payload);
  }
  ReplicaHelloAck ack;
  if (status.ok() && type != ReplicationFrameType::kError) {
    if (type != ReplicationFrameType::kHelloAck) {
      status = Status::InvalidArgument("expected HELLO_ACK");
    } else {
      status = ReplicaHelloAck::Parse(payload, &ack);
    }
  }
  if (status.ok() && options_.want_snapshot && !ack.snapshot_follows) {
    status = Status::FailedPrecondition(
        "builder offers no snapshot bootstrap (started without a "
        "replication image)");
  }
  if (status.ok() && ack.snapshot_follows) {
    status = ReadReplicationFrame(fd_, &type, &payload);
    if (status.ok() && type != ReplicationFrameType::kSnapshot) {
      status = Status::InvalidArgument("expected SNAPSHOT");
    }
    if (status.ok()) {
      std::ofstream out(options_.snapshot_save_path, std::ios::binary);
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
      if (!out.good()) {
        status = Status::IoError("cannot write fetched snapshot to " +
                                 options_.snapshot_save_path);
      }
    }
    if (status.ok() && bootstrap != nullptr) {
      bootstrap->snapshot_received = true;
      bootstrap->snapshot_bytes = static_cast<int64_t>(payload.size());
    }
  }
  if (!status.ok()) {
    ::close(fd_);
    fd_ = -1;
    return status;
  }
  net::SetRecvTimeout(fd_, 0);
  if (bootstrap != nullptr) {
    bootstrap->built_seq = ack.built_seq;
    bootstrap->graph_epoch = ack.graph_epoch;
    bootstrap->graph_edges = ack.graph_edges;
  }
  return Status::Ok();
}

void ReplicationClient::Start(RecommendationService* service) {
  SIMGRAPH_CHECK(fd_ >= 0) << "Connect must succeed before Start";
  SIMGRAPH_CHECK(service != nullptr);
  SIMGRAPH_CHECK(service_ == nullptr) << "Start may only be called once";
  service_ = service;
  pump_ = std::thread([this] { PumpLoop(); });
  acker_ = std::thread([this] { AckLoop(); });
}

void ReplicationClient::Stop() {
  if (stopping_.exchange(true)) return;
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
  if (pump_.joinable()) pump_.join();
  if (acker_.joinable()) acker_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ReplicationClient::session_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_status_;
}

void ReplicationClient::WaitUntilClosed() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return finished_.load() || stopping_.load(); });
}

void ReplicationClient::PumpLoop() {
  for (;;) {
    ReplicationFrameType type;
    std::string payload;
    const Status status = ReadReplicationFrame(fd_, &type, &payload);
    if (!status.ok()) {
      // EOF after Stop or a builder BYE race is a clean close; anything
      // else (malformed frame, truncated stream) is the real cause.
      Finish(stopping_.load() ? Status::Ok() : status);
      return;
    }
    switch (type) {
      case ReplicationFrameType::kDelta: {
        auto delta = std::make_shared<SimGraphDelta>();
        const Status parsed = SimGraphDelta::Parse(payload, delta.get());
        if (!parsed.ok()) {
          Finish(parsed);
          return;
        }
        const uint64_t seq = delta->seq_end;
        IngestItem item;
        item.delta = std::move(delta);
        item.seq = seq;
        if (service_->PublishItem(std::move(item)) == 0) {
          Finish(Status::FailedPrecondition(
              "local service stopped under the replication pump"));
          return;
        }
        SIMGRAPH_COUNTER_ADD("serve.replication.deltas_received", 1);
        SIMGRAPH_COUNTER_ADD("serve.replication.bytes_received",
                             static_cast<double>(payload.size()));
        {
          std::lock_guard<std::mutex> lock(mu_);
          enqueued_seq_.store(seq);
          cv_.notify_all();
        }
        break;
      }
      case ReplicationFrameType::kBye:
        Finish(Status::Ok());
        return;
      case ReplicationFrameType::kError:
        Finish(Status::FailedPrecondition("builder error: " + payload));
        return;
      default:
        // Unexpected mid-stream frame (e.g. a second HELLO_ACK):
        // protocol violation.
        Finish(Status::InvalidArgument("unexpected SGRP frame"));
        return;
    }
  }
}

void ReplicationClient::AckLoop() {
  for (;;) {
    uint64_t target;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_.load() || finished_.load() ||
               enqueued_seq_.load() > acked_seq_;
      });
      if (stopping_.load()) return;
      target = enqueued_seq_.load();
      if (target <= acked_seq_ && finished_.load()) return;
      if (target <= acked_seq_) continue;
    }
    // Follow the applier: the ack reports what is APPLIED locally, not
    // what is enqueued — the builder's lag accounting hinges on that.
    service_->WaitForApplied(target);
    if (stopping_.load()) return;
    const std::string ack = EncodeReplicationAck(target);
    if (!WriteReplicationFrame(fd_, ReplicationFrameType::kAck, ack)
             .ok()) {
      return;
    }
    acked_seq_ = target;
    SIMGRAPH_GAUGE_SET("serve.replication.acked_seq",
                       static_cast<double>(target));
    if (finished_.load() && enqueued_seq_.load() <= target) return;
  }
}

void ReplicationClient::Finish(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!finished_.exchange(true)) {
    session_status_ = std::move(status);
  }
  cv_.notify_all();
}

}  // namespace serve
}  // namespace simgraph
