#include "serve/service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {

RecommendationService::RecommendationService(
    std::unique_ptr<ServingRecommender> recommender, ServiceOptions options)
    : recommender_(std::move(recommender)),
      options_(options),
      flight_recorder_(options.flight_recorder_capacity),
      queue_(options.ingest_queue_capacity) {
  SIMGRAPH_CHECK(recommender_ != nullptr);
  if (options_.shard >= 0) {
    auto& registry = metrics::Registry::Global();
    shard_requests_ = &registry.counter(
        metrics::ShardMetricName("serve.requests", options_.shard));
    shard_applied_seq_ = &registry.gauge(
        metrics::ShardMetricName("serve.ingest.applied_seq", options_.shard));
    shard_queue_depth_max_ = &registry.gauge(metrics::ShardMetricName(
        "serve.ingest.queue_depth_max", options_.shard));
    recommender_->BindShard(options_.shard);
  }
}

RecommendationService::~RecommendationService() { Stop(); }

Status RecommendationService::Train(const Dataset& dataset,
                                    int64_t train_end) {
  SIMGRAPH_RETURN_IF_ERROR(recommender_->Train(dataset, train_end));
  num_users_ = dataset.num_users();
  if (options_.cache_ttl >= 0) {
    cache_ = std::make_unique<ResultCache>(num_users_, options_.cache_ttl,
                                           options_.cache_stripes);
  }
  return Status::Ok();
}

void RecommendationService::Start() {
  if (started_.exchange(true)) return;
  applier_ = std::thread([this] { ApplierLoop(); });
}

void RecommendationService::Stop() {
  if (stopped_.exchange(true)) return;
  queue_.Close();
  if (applier_.joinable()) applier_.join();
  // Unblock any WaitForApplied stragglers (covers the never-started
  // case, where the applier loop never ran to set drained_).
  {
    std::lock_guard<std::mutex> lock(applied_mu_);
    drained_ = true;
  }
  applied_cv_.notify_all();
}

uint64_t RecommendationService::Publish(const RetweetEvent& event) {
  IngestItem item;
  item.event = event;
  // Capture the publishing request's trace context so the applier thread
  // can attribute the queue wait and the apply work to it.
  if (trace::RequestScope* scope = trace::CurrentScope();
      scope != nullptr && scope->collecting()) {
    item.request_id = scope->request_id();
    item.traced = scope->recording();
    item.enqueue_us = trace::NowMicros();
  }
  return PublishItem(std::move(item));
}

uint64_t RecommendationService::PublishItem(IngestItem item) {
  SIMGRAPH_CHECK(started_.load()) << "Start must be called before Publish";
  const auto ticket = queue_.Push(std::move(item));
  if (!ticket.has_value()) return 0;  // stopped; event rejected
  const auto depth = static_cast<int64_t>(queue_.size());
  SIMGRAPH_GAUGE_SET("serve.ingest.queue_depth", static_cast<double>(depth));
  int64_t max = queue_depth_max_.load(std::memory_order_relaxed);
  while (depth > max && !queue_depth_max_.compare_exchange_weak(
                            max, depth, std::memory_order_relaxed)) {
  }
  const double depth_max =
      static_cast<double>(queue_depth_max_.load(std::memory_order_relaxed));
  SIMGRAPH_GAUGE_SET("serve.ingest.queue_depth_max", depth_max);
  if (shard_queue_depth_max_ != nullptr) {
    shard_queue_depth_max_->Set(depth_max);
  }
  return *ticket + 1;  // tickets are 0-based, sequence numbers 1-based
}

uint64_t RecommendationService::AppliedSeq() const {
  std::lock_guard<std::mutex> lock(applied_mu_);
  return applied_seq_;
}

void RecommendationService::WaitForApplied(uint64_t seq) {
  std::unique_lock<std::mutex> lock(applied_mu_);
  applied_cv_.wait(lock,
                   [this, seq] { return applied_seq_ >= seq || drained_; });
}

void RecommendationService::ApplierLoop() {
  while (true) {
    std::optional<IngestItem> item = queue_.Pop();
    if (!item.has_value()) break;  // closed and drained
    if (item->request_id != 0 && item->traced) {
      const int64_t now_us = trace::NowMicros();
      trace::RecordRequestSpan("request/queue_wait", "serve",
                               item->enqueue_us,
                               now_us - item->enqueue_us, item->request_id);
    }
    // Adopt the publishing request on this thread so the apply span
    // below joins its trace tree.
    std::optional<trace::RequestScope> request_scope;
    if (item->request_id != 0) {
      request_scope.emplace("request/apply", item->request_id, item->traced);
    }
    AffectedUsers affected;
    {
      SIMGRAPH_TRACE_SPAN("request/apply_event", "serve");
      // Timed explicitly (not SIMGRAPH_SCOPED_LATENCY) so one clock pair
      // feeds both the cumulative histogram and the per-window one.
      const bool collect = metrics::Enabled();
      std::chrono::steady_clock::time_point apply_start;
      if (collect) apply_start = std::chrono::steady_clock::now();
      if (item->delta != nullptr) {
        // Delta-applying shard (docs/ingest.md): replay the builder's
        // recorded ops instead of re-running the incremental update.
        affected = recommender_->ApplyDelta(*item->delta);
      } else if (recommender_->concurrent_reads()) {
        affected = recommender_->ObserveAffected(item->event);
      } else {
        std::lock_guard<std::mutex> lock(serial_mu_);
        affected = recommender_->ObserveAffected(item->event);
      }
      if (collect) {
        static metrics::LatencyHistogram& apply_hist =
            metrics::Registry::Global().histogram(
                "serve.ingest.apply_seconds");
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          apply_start)
                .count();
        apply_hist.Record(seconds);
        window_apply_us_.Add(seconds * 1e6);
      }
    }
    SIMGRAPH_COUNTER_ADD(
        "serve.ingest.events",
        item->delta != nullptr ? item->delta->num_events() : 1);
    if (cache_ != nullptr) {
      int64_t dropped = 0;
      if (affected.all) {
        dropped = cache_->InvalidateAll();
      } else {
        for (const UserId u : affected.users) {
          if (cache_->Invalidate(u)) ++dropped;
        }
      }
      SIMGRAPH_COUNTER_ADD("serve.cache_invalidations", dropped);
    }
    {
      std::lock_guard<std::mutex> lock(applied_mu_);
      // A stamped item carries the global sequence the pipeline assigned
      // (a delta jumps the counter across its whole batch); unstamped
      // items count one by one, matching the local queue ticket.
      if (item->seq != 0) {
        applied_seq_ = std::max(applied_seq_, item->seq);
      } else {
        ++applied_seq_;
      }
      SIMGRAPH_GAUGE_SET("serve.ingest.applied_seq",
                         static_cast<double>(applied_seq_));
      if (shard_applied_seq_ != nullptr) {
        shard_applied_seq_->Set(static_cast<double>(applied_seq_));
      }
    }
    applied_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(applied_mu_);
    drained_ = true;
  }
  applied_cv_.notify_all();
}

BackendStats RecommendationService::Stats() const {
  ShardStats shard;
  shard.applied_seq = AppliedSeq();
  shard.cached_entries = cache_ != nullptr ? cache_->size() : 0;
  recommender_->GraphStats(&shard.graph_epoch, &shard.graph_edges);
  BackendStats stats;
  stats.applied_seq = shard.applied_seq;
  stats.cached_entries = shard.cached_entries;
  stats.graph_epoch = shard.graph_epoch;
  stats.graph_edges = shard.graph_edges;
  stats.shards.push_back(shard);
  return stats;
}

RecommendResponse RecommendationService::Recommend(
    const RecommendRequest& request) {
  const auto deadline =
      options_.deadline.count() == 0
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() + options_.deadline;
  if (recommender_->concurrent_reads()) {
    return RecommendLocked(request, deadline);
  }
  std::lock_guard<std::mutex> lock(serial_mu_);
  return RecommendLocked(request, deadline);
}

std::vector<RecommendResponse> RecommendationService::RecommendBatch(
    const std::vector<RecommendRequest>& requests) {
  SIMGRAPH_HISTOGRAM_RECORD("serve.batch.size",
                            static_cast<double>(requests.size()));
  std::vector<RecommendResponse> responses;
  responses.reserve(requests.size());
  const auto start = std::chrono::steady_clock::now();
  const auto deadline_for = [&](size_t i) {
    // Cumulative budgets: early finishers donate slack to later
    // requests instead of every request getting a cliff of its own.
    return options_.deadline.count() == 0
               ? std::chrono::steady_clock::time_point::max()
               : start + options_.deadline * static_cast<int64_t>(i + 1);
  };
  if (recommender_->concurrent_reads()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      responses.push_back(RecommendLocked(requests[i], deadline_for(i)));
    }
  } else {
    std::lock_guard<std::mutex> lock(serial_mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      responses.push_back(RecommendLocked(requests[i], deadline_for(i)));
    }
  }
  return responses;
}

RecommendResponse RecommendationService::RecommendLocked(
    const RecommendRequest& request,
    std::chrono::steady_clock::time_point deadline) {
  // Passive when the TCP front-end already opened a scope for this
  // request; owning when the service API is called directly.
  trace::RequestScope request_scope("request/recommend");
  request_scope.SetAttribute("user", request.user);
  SIMGRAPH_TRACE_SPAN("RecommendationService::Recommend", "serve");
  if (!metrics::Enabled()) return RecommendImpl(request, deadline);

  // One clock pair feeds the cumulative serve.request.seconds histogram
  // (what SIMGRAPH_SCOPED_LATENCY recorded before), the per-window
  // meters, and the flight recorder — the cache-hit path is ~100ns, so
  // every extra clock read here would show up in the bench.
  static metrics::LatencyHistogram& request_hist =
      metrics::Registry::Global().histogram("serve.request.seconds");
  SIMGRAPH_COUNTER_ADD("serve.requests", 1);
  if (shard_requests_ != nullptr) shard_requests_->Add(1);
  const auto start = std::chrono::steady_clock::now();
  RecommendResponse response = RecommendImpl(request, deadline);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  request_hist.Record(seconds);
  window_requests_.Add(1);
  if (response.cache_hit) window_hits_.Add(1);
  if (response.degraded) window_degraded_.Add(1);
  if (flight_recorder_.enabled()) {
    // The owning scope (ours, or the TCP front-end's) accumulates the
    // per-stage breakdown; retain from it so the slow-log shows stages.
    if (trace::RequestScope* scope = trace::CurrentScope();
        scope != nullptr) {
      flight_recorder_.Record(*scope, request.user,
                              static_cast<int64_t>(seconds * 1e6),
                              response.cache_hit, response.degraded);
    }
  }
  return response;
}

RecommendResponse RecommendationService::RecommendImpl(
    const RecommendRequest& request,
    std::chrono::steady_clock::time_point deadline) {
  RecommendResponse response;
  response.applied_seq = AppliedSeq();
  if (request.user < 0 || request.user >= num_users_) {
    response.status = Status::InvalidArgument("user out of range");
    return response;
  }
  if (request.k <= 0) {
    response.status = Status::InvalidArgument("k must be positive");
    return response;
  }

  uint64_t version = 0;
  if (cache_ != nullptr) {
    ResultCache::Lookup lookup =
        cache_->Get(request.user, request.now, request.k);
    if (lookup.hit) {
      SIMGRAPH_COUNTER_ADD("serve.cache_hit", 1);
      response.cache_hit = true;
      response.tweets = std::move(lookup.tweets);
      return response;
    }
    SIMGRAPH_COUNTER_ADD("serve.cache_miss", 1);
    version = lookup.version;
  }

  RecommendOutcome outcome = recommender_->RecommendUntil(
      request.user, request.now, request.k, deadline);
  if (!outcome.complete) {
    SIMGRAPH_COUNTER_ADD("serve.deadline_exceeded", 1);
    response.degraded = true;
    // A truncated list must never be cached: a later identical request
    // would be served the degraded answer as if it were exact.
    response.tweets = std::move(outcome.tweets);
    return response;
  }
  if (cache_ != nullptr) {
    cache_->Put(request.user, request.now, request.k, outcome.tweets,
                version);
  }
  response.tweets = std::move(outcome.tweets);
  return response;
}

void RecommendationService::RotateWindows(int64_t window,
                                          std::vector<ShardWindow>* out) {
  // `window` is the index being closed; the meters move on to the next.
  window_requests_.AdvanceTo(window + 1);
  window_hits_.AdvanceTo(window + 1);
  window_degraded_.AdvanceTo(window + 1);
  window_apply_us_.AdvanceTo(window + 1);
  flight_recorder_.AdvanceTo(window + 1);
  if (out == nullptr || window < 0) return;
  ShardWindow w;
  w.shard = options_.shard;
  w.window = window;
  w.requests = window_requests_.Count(window);
  w.hits = window_hits_.Count(window);
  w.degraded = window_degraded_.Count(window);
  w.apply_us = window_apply_us_.Window(window);
  out->push_back(w);
}

void RecommendationService::CollectSlowRequests(
    int32_t max, std::vector<SlowRequestEntry>* out) const {
  if (out == nullptr) return;
  std::vector<SlowRequestEntry> entries = flight_recorder_.Snapshot(max);
  for (SlowRequestEntry& e : entries) {
    e.shard = options_.shard;
    out->push_back(e);
  }
}

}  // namespace serve
}  // namespace simgraph
