#include "serve/sharded_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {

ShardedService::ShardedService(const RecommenderFactory& factory,
                               ShardedServiceOptions options)
    : options_(options), router_(options.num_shards) {
  SIMGRAPH_CHECK(factory != nullptr);
  shards_.reserve(static_cast<size_t>(router_.num_shards()));
  for (int32_t i = 0; i < router_.num_shards(); ++i) {
    ServiceOptions shard_options = options_.shard_options;
    shard_options.shard = i;
    std::unique_ptr<ServingRecommender> recommender = factory();
    SIMGRAPH_CHECK(recommender != nullptr)
        << "recommender factory returned null for shard " << i;
    shards_.push_back(std::make_unique<RecommendationService>(
        std::move(recommender), shard_options));
  }
}

ShardedService::~ShardedService() { Stop(); }

Status ShardedService::Train(const Dataset& dataset, int64_t train_end) {
  // Shards are independent replicas; train them in parallel.
  std::vector<Status> statuses(shards_.size(), Status::Ok());
  std::vector<std::thread> trainers;
  trainers.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    trainers.emplace_back([this, &dataset, train_end, &statuses, i] {
      statuses[i] = shards_[i]->Train(dataset, train_end);
    });
  }
  for (std::thread& t : trainers) t.join();
  for (const Status& status : statuses) {
    SIMGRAPH_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

void ShardedService::Start() {
  for (const auto& shard : shards_) shard->Start();
  SIMGRAPH_GAUGE_SET("serve.shards",
                     static_cast<double>(router_.num_shards()));
}

void ShardedService::Stop() {
  for (const auto& shard : shards_) shard->Stop();
}

uint64_t ShardedService::Publish(const RetweetEvent& event) {
  // One lock around the whole fan-out: every shard receives every event
  // in the same order, so the per-shard ticket sequences stay in
  // lockstep and the first shard's sequence number is THE global
  // sequence number. Queue pushes are O(1); when a shard's queue is
  // full, backpressure propagates to all publishers, which is the
  // behaviour a saturated unsharded service has too.
  std::lock_guard<std::mutex> lock(publish_mu_);
  uint64_t seq = 0;
  for (const int32_t shard : router_.ShardsForEvent(event)) {
    const uint64_t shard_seq =
        shards_[static_cast<size_t>(shard)]->Publish(event);
    if (shard_seq == 0) return 0;  // stopped; event rejected
    if (seq == 0) {
      seq = shard_seq;
    } else {
      SIMGRAPH_CHECK(shard_seq == seq)
          << "shard " << shard << " sequence " << shard_seq
          << " diverged from " << seq
          << " (was a shard published to directly?)";
    }
  }
  return seq;
}

uint64_t ShardedService::AppliedSeq() const {
  uint64_t min_seq = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t seq = shards_[i]->AppliedSeq();
    if (i == 0 || seq < min_seq) min_seq = seq;
  }
  return min_seq;
}

void ShardedService::WaitForApplied(uint64_t seq) {
  for (const auto& shard : shards_) shard->WaitForApplied(seq);
}

RecommendResponse ShardedService::Recommend(const RecommendRequest& request) {
  // Passive under the TCP front-end's scope (same request id), owning
  // when the sharded API is called directly — either way the route span
  // and the downstream shard's spans land in one connected tree.
  trace::RequestScope scope("request/recommend");
  int32_t shard;
  {
    SIMGRAPH_TRACE_SPAN("request/route", "serve");
    shard = router_.ShardOf(request.user);
  }
  scope.SetAttribute("shard", shard);
  SIMGRAPH_COUNTER_ADD("serve.router.requests", 1);
  return shards_[static_cast<size_t>(shard)]->Recommend(request);
}

BackendStats ShardedService::Stats() const {
  BackendStats stats;
  stats.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const BackendStats shard = shards_[i]->Stats();
    const ShardStats& entry = shard.shards.front();
    stats.shards.push_back(entry);
    stats.cached_entries += entry.cached_entries;
    stats.graph_epoch = std::max(stats.graph_epoch, entry.graph_epoch);
    stats.graph_edges = std::max(stats.graph_edges, entry.graph_edges);
    if (i == 0 || entry.applied_seq < stats.applied_seq) {
      stats.applied_seq = entry.applied_seq;
    }
  }
  return stats;
}

}  // namespace serve
}  // namespace simgraph
