#include "serve/sharded_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {

ShardedService::ShardedService(const ServingSimGraphOptions& simgraph_options,
                               ShardedServiceOptions options)
    : options_(std::move(options)), router_(options_.num_shards) {
  source_ =
      std::make_unique<SimGraphServingRecommender>(simgraph_options);
  // Applier-side candidate state must mirror the builder's exactly —
  // same freshness window, same stripe count — or replay diverges.
  DeltaApplierOptions applier_options;
  applier_options.freshness_window = simgraph_options.freshness_window;
  applier_options.num_stripes = simgraph_options.num_stripes;
  // Image-backed serving: every shard pins the builder's shared mmap'd
  // graph image — one image per process, never per-shard copies.
  applier_options.graph_image = simgraph_options.graph_image;
  shards_.reserve(static_cast<size_t>(router_.num_shards()));
  appliers_.reserve(static_cast<size_t>(router_.num_shards()));
  for (int32_t i = 0; i < router_.num_shards(); ++i) {
    ServiceOptions shard_options = options_.shard_options;
    shard_options.shard = i;
    auto applier = std::make_unique<DeltaApplierRecommender>(applier_options);
    appliers_.push_back(applier.get());
    shards_.push_back(std::make_unique<RecommendationService>(
        std::move(applier), shard_options));
  }
  BuildPipeline();
}

ShardedService::ShardedService(const RecommenderFactory& factory,
                               ShardedServiceOptions options)
    : options_(std::move(options)), router_(options_.num_shards) {
  SIMGRAPH_CHECK(factory != nullptr);
  shards_.reserve(static_cast<size_t>(router_.num_shards()));
  for (int32_t i = 0; i < router_.num_shards(); ++i) {
    ServiceOptions shard_options = options_.shard_options;
    shard_options.shard = i;
    std::unique_ptr<ServingRecommender> recommender = factory();
    SIMGRAPH_CHECK(recommender != nullptr)
        << "recommender factory returned null for shard " << i;
    shards_.push_back(std::make_unique<RecommendationService>(
        std::move(recommender), shard_options));
  }
  BuildPipeline();
}

void ShardedService::BuildPipeline() {
  std::vector<RecommendationService*> shard_ptrs;
  shard_ptrs.reserve(shards_.size());
  for (const auto& shard : shards_) shard_ptrs.push_back(shard.get());
  DeltaBuilderOptions builder_options;
  builder_options.queue_capacity = options_.ingest_queue_capacity;
  builder_options.max_batch_events = options_.max_batch_events;
  builder_options.delta_observer = options_.delta_observer;
  if (options_.replication != nullptr) {
    SIMGRAPH_CHECK(source_ != nullptr)
        << "replication fanout requires delta-shipping mode";
    // Chain the fanout onto the builder tap: remote replicas see the
    // exact delta the in-process shards receive, in the same order.
    ReplicationFanout* fanout = options_.replication;
    std::function<void(const SimGraphDelta&)> observer =
        options_.delta_observer;
    builder_options.delta_observer =
        [fanout, observer](const SimGraphDelta& delta) {
          if (observer) observer(delta);
          fanout->ShipDelta(delta);
        };
  }
  pipeline_ = std::make_unique<DeltaBuilder>(
      source_.get(), std::move(shard_ptrs), std::move(builder_options));
}

ShardedService::~ShardedService() { Stop(); }

Status ShardedService::Train(const Dataset& dataset, int64_t train_end) {
  // The builder source and the shards are independent until seeding;
  // train them all in parallel, one thread each.
  const size_t jobs = shards_.size() + (source_ != nullptr ? 1 : 0);
  std::vector<Status> statuses(jobs, Status::Ok());
  std::vector<std::thread> trainers;
  trainers.reserve(jobs);
  for (size_t i = 0; i < shards_.size(); ++i) {
    trainers.emplace_back([this, &dataset, train_end, &statuses, i] {
      statuses[i] = shards_[i]->Train(dataset, train_end);
    });
  }
  if (source_ != nullptr) {
    trainers.emplace_back([this, &dataset, train_end, &statuses] {
      statuses.back() = source_->Train(dataset, train_end);
    });
  }
  for (std::thread& t : trainers) t.join();
  for (const Status& status : statuses) {
    SIMGRAPH_RETURN_IF_ERROR(status);
  }
  // Appliers never build a graph of their own: hand each the source's
  // trained snapshot so propagation state starts from the same epoch
  // the builder will record refreshes against.
  if (source_ != nullptr) {
    for (DeltaApplierRecommender* applier : appliers_) {
      applier->SeedSnapshot(source_->GraphSnapshot(), source_->graph_epoch());
    }
    if (options_.replication != nullptr) {
      const std::shared_ptr<const SimGraph> snapshot =
          source_->GraphSnapshot();
      options_.replication->SeedGraphStats(
          source_->graph_epoch(),
          snapshot != nullptr ? snapshot->graph.num_edges() : 0);
    }
  }
  return Status::Ok();
}

void ShardedService::Start() {
  // Shards first: the pipeline's fan-out lands in live shard queues.
  for (const auto& shard : shards_) shard->Start();
  pipeline_->Start();
  SIMGRAPH_GAUGE_SET("serve.shards",
                     static_cast<double>(router_.num_shards()));
}

void ShardedService::Stop() {
  // Pipeline first so everything still buffered in the global queue is
  // built and fanned out into the (still running) shard queues; then
  // the shards drain those.
  pipeline_->Stop();
  for (const auto& shard : shards_) shard->Stop();
}

uint64_t ShardedService::Publish(const RetweetEvent& event) {
  // No publish mutex: the pipeline's global queue assigns the sequence
  // number and its single builder thread is the only shard publisher,
  // so per-shard order is preserved by construction (docs/ingest.md).
  return pipeline_->Publish(event);
}

uint64_t ShardedService::AppliedSeq() const {
  uint64_t min_seq = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t seq = shards_[i]->AppliedSeq();
    if (i == 0 || seq < min_seq) min_seq = seq;
  }
  if (options_.replication != nullptr) {
    // Deployment-wide applied prefix: the slowest LIVE remote replica
    // counts too; degraded replicas are already out of the live set.
    min_seq = std::min(min_seq, options_.replication->MinAckedSeq());
  }
  return min_seq;
}

void ShardedService::WaitForApplied(uint64_t seq) {
  for (const auto& shard : shards_) shard->WaitForApplied(seq);
  if (options_.replication != nullptr) {
    // Local shards first: once they applied `seq` the builder has
    // certainly built it, so the remote wait can only be satisfied (or
    // resolved by degrading a stalled replica) — never wait forever on
    // a sequence that was never shipped.
    options_.replication->WaitForAcked(seq);
  }
}

RecommendResponse ShardedService::Recommend(const RecommendRequest& request) {
  // Passive under the TCP front-end's scope (same request id), owning
  // when the sharded API is called directly — either way the route span
  // and the downstream shard's spans land in one connected tree.
  trace::RequestScope scope("request/recommend");
  int32_t shard;
  {
    SIMGRAPH_TRACE_SPAN("request/route", "serve");
    shard = router_.ShardOf(request.user);
  }
  scope.SetAttribute("shard", shard);
  SIMGRAPH_COUNTER_ADD("serve.router.requests", 1);
  return shards_[static_cast<size_t>(shard)]->Recommend(request);
}

std::vector<RecommendResponse> ShardedService::RecommendBatch(
    const std::vector<RecommendRequest>& requests) {
  if (requests.size() <= 1) {
    // A batch of one routes like a single request (keeps its route span
    // and serve.router.requests accounting).
    return ServingBackend::RecommendBatch(requests);
  }
  // One scope per batch: the shards' per-request recommend spans nest
  // under it, so a trace shows the whole batch as one connected tree.
  trace::RequestScope scope("request/recommend_batch");
  scope.SetAttribute("batch", static_cast<int64_t>(requests.size()));
  const size_t n = requests.size();
  const size_t num_shards = shards_.size();
  std::vector<std::vector<size_t>> by_shard(num_shards);
  {
    SIMGRAPH_TRACE_SPAN("request/route_batch", "serve");
    for (size_t i = 0; i < n; ++i) {
      by_shard[static_cast<size_t>(router_.ShardOf(requests[i].user))]
          .push_back(i);
    }
  }
  std::vector<RecommendResponse> responses(n);
  std::vector<RecommendRequest> sub;
  int64_t shards_hit = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const std::vector<size_t>& indices = by_shard[s];
    if (indices.empty()) continue;
    ++shards_hit;
    sub.clear();
    sub.reserve(indices.size());
    for (const size_t i : indices) sub.push_back(requests[i]);
    std::vector<RecommendResponse> shard_responses =
        shards_[s]->RecommendBatch(sub);
    for (size_t j = 0; j < indices.size(); ++j) {
      responses[indices[j]] = std::move(shard_responses[j]);
    }
  }
  SIMGRAPH_COUNTER_ADD("serve.router.batch.requests",
                       static_cast<int64_t>(n));
  SIMGRAPH_COUNTER_ADD("serve.router.batch.flushes", shards_hit);
  SIMGRAPH_HISTOGRAM_RECORD("serve.router.batch.size",
                            static_cast<double>(n));
  SIMGRAPH_HISTOGRAM_RECORD("serve.router.batch.shards",
                            static_cast<double>(shards_hit));
  return responses;
}

BackendStats ShardedService::Stats() const {
  BackendStats stats;
  stats.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const BackendStats shard = shards_[i]->Stats();
    const ShardStats& entry = shard.shards.front();
    stats.shards.push_back(entry);
    stats.cached_entries += entry.cached_entries;
    stats.graph_epoch = std::max(stats.graph_epoch, entry.graph_epoch);
    stats.graph_edges = std::max(stats.graph_edges, entry.graph_edges);
    if (i == 0 || entry.applied_seq < stats.applied_seq) {
      stats.applied_seq = entry.applied_seq;
    }
  }
  if (options_.replication != nullptr) {
    const uint64_t remote = options_.replication->MinAckedSeq();
    if (remote < stats.applied_seq) stats.applied_seq = remote;
  }
  if (source_ != nullptr) {
    // How far the slowest shard — local or live remote replica —
    // trails the builder, in events.
    const uint64_t built = pipeline_->built_seq();
    const uint64_t lag =
        built > stats.applied_seq ? built - stats.applied_seq : 0;
    SIMGRAPH_GAUGE_SET("serve.ingest.delta.lag_events",
                       static_cast<double>(lag));
  }
  return stats;
}

void ShardedService::RotateWindows(int64_t window,
                                   std::vector<ShardWindow>* out) {
  for (auto& shard : shards_) shard->RotateWindows(window, out);
}

void ShardedService::CollectSlowRequests(
    int32_t max, std::vector<SlowRequestEntry>* out) const {
  if (out == nullptr || max <= 0) return;
  std::vector<SlowRequestEntry> merged;
  for (const auto& shard : shards_) shard->CollectSlowRequests(max, &merged);
  std::sort(merged.begin(), merged.end(),
            [](const SlowRequestEntry& a, const SlowRequestEntry& b) {
              return a.total_us > b.total_us;
            });
  if (static_cast<int32_t>(merged.size()) > max) {
    merged.resize(static_cast<size_t>(max));
  }
  out->insert(out->end(), merged.begin(), merged.end());
}

}  // namespace serve
}  // namespace simgraph
