#ifndef SIMGRAPH_SERVE_REPLICATION_FANOUT_H_
#define SIMGRAPH_SERVE_REPLICATION_FANOUT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/simgraph_delta.h"
#include "util/status.h"

namespace simgraph {
namespace serve {

struct ReplicationFanoutOptions {
  /// Listen port for replica connections (127.0.0.1 only). 0 picks an
  /// ephemeral port; read it back with port() after Start.
  uint16_t port = 0;
  /// Bounded-lag cutoff, in events (the same unit as the
  /// serve.ingest.delta.lag_events gauge): when built_seq minus a
  /// replica's acked seq exceeds this, the replica is marked degraded
  /// and dropped from the session instead of blocking the pipeline.
  int64_t max_lag_events = 65536;
  /// Ack-stall wall-clock backstop: a live replica that has outstanding
  /// deltas but whose acked seq has not moved for this long is degraded
  /// from inside WaitForAcked. This is what keeps wait_applied from
  /// hanging when the event stream pauses right after a replica stalls
  /// (lag alone only grows while new deltas ship). 0 disables.
  int64_t ack_stall_timeout_ms = 10000;
  /// SO_SNDTIMEO per delta send; a blocked send re-checks the lag
  /// cutoff at this cadence instead of wedging the sender thread.
  int64_t send_timeout_ms = 250;
  /// How long a freshly accepted connection may take to produce its
  /// HELLO frame before the session is dropped (port scanners).
  int64_t handshake_timeout_ms = 10000;
  /// Retained shipped deltas for late-joiner backlog replay. A replica
  /// whose applied_seq predates the retained window is rejected with an
  /// ERROR frame ("bootstrap gap") and must restart from a snapshot.
  int64_t delta_log_capacity = 65536;
  /// SGCS image served to replicas that HELLO with want_snapshot; empty
  /// means snapshot bootstrap is not offered. The image must represent
  /// replica state as of `snapshot_seq` (the startup image is seq 0).
  std::string snapshot_path;
  /// Sequence the snapshot image corresponds to: a want_snapshot joiner
  /// resumes from here, and the bootstrap-gap check is made against it
  /// rather than the joiner's own position. Refresh both together with
  /// UpdateSnapshot when the builder regenerates its image.
  uint64_t snapshot_seq = 0;
};

/// Builder-side replication: streams every delta the DeltaBuilder
/// finalises to N remote shard replicas over SGRP/TCP
/// (docs/replication.md), tracks per-replica acks, and enforces a
/// bounded-lag cutoff so one stalled replica degrades instead of
/// stalling ingest.
///
/// Wiring: hand one ReplicationFanout to ShardedServiceOptions —
/// the sharded service chains ShipDelta onto its delta_observer tap
/// (builder thread), folds MinAckedSeq into AppliedSeq/Stats, and
/// extends WaitForApplied with WaitForAcked. Replicas connect inbound,
/// so late joiners need nothing but the port: the handshake replays the
/// retained delta backlog past their applied_seq, optionally preceded
/// by the SGCS bootstrap image.
///
/// Threading: one acceptor, plus one sender and one ack-reader thread
/// per replica session. ShipDelta serialises once and enqueues the same
/// framed buffer on every live replica's outbox; per-replica sends
/// never run on the builder thread, so a slow socket costs the pipeline
/// nothing until the lag cutoff fires.
class ReplicationFanout {
 public:
  explicit ReplicationFanout(ReplicationFanoutOptions options = {});
  ~ReplicationFanout();

  ReplicationFanout(const ReplicationFanout&) = delete;
  ReplicationFanout& operator=(const ReplicationFanout&) = delete;

  Status Start();
  void Stop();

  /// Bound listen port (after Start).
  uint16_t port() const { return port_; }

  /// Seeds the graph stats handed to replicas at handshake (call after
  /// the builder source trained, before serving).
  void SeedGraphStats(uint64_t epoch, int64_t edges);

  /// Replaces the bootstrap image served to want_snapshot joiners.
  /// `seq` is the sequence the new image represents state through;
  /// joiners bootstrapping from it resume there, so a builder that
  /// refreshes its image as the delta log trims keeps cold joins
  /// possible indefinitely. The cached bytes are invalidated and
  /// re-read lazily on the next bootstrap.
  void UpdateSnapshot(const std::string& path, uint64_t seq);

  /// Builder-thread tap: serialize, append to the retained log, enqueue
  /// on every live replica, and apply the lag cutoff.
  void ShipDelta(const SimGraphDelta& delta);

  /// Smallest acked sequence across live replicas; UINT64_MAX when no
  /// replica is live (remote then imposes no bound on AppliedSeq).
  uint64_t MinAckedSeq() const;

  /// Blocks until every live replica acked `seq`, a stalled replica is
  /// degraded out of the live set, or Stop. Never hangs on a dead
  /// replica: the ack-stall backstop degrades it from in here.
  void WaitForAcked(uint64_t seq);

  /// Waits until at least `count` replicas are live. For tests/benches
  /// that must not publish before their replicas registered.
  bool WaitForReplicas(int32_t count, std::chrono::milliseconds timeout);

  int32_t num_live() const;
  int64_t num_degraded() const;
  uint64_t built_seq() const { return built_seq_.load(); }
  /// Session threads currently tracked (live plus not-yet-reaped).
  /// Finished sessions are reaped on each accept; for tests.
  int64_t num_sessions() const;

 private:
  struct Replica {
    int fd = -1;
    std::string name;
    uint64_t acked = 0;
    /// Last moment this replica was known healthy: its acked seq
    /// advanced, it joined, or a delta shipped while it had nothing
    /// outstanding. The ack-stall backstop measures from here — NOT
    /// from the last ack alone, which goes stale across publish-idle
    /// gaps even on a perfectly healthy replica.
    std::chrono::steady_clock::time_point last_progress{};
    /// built_seq at handshake: while acked is still below this, the
    /// replica is draining its join backlog and the event-lag cutoff
    /// does not apply (the ack-stall backstop still does).
    uint64_t join_built_seq = 0;
    bool live = false;
    bool degraded = false;
    /// Framed byte buffers awaiting this replica's sender thread.
    std::deque<std::shared_ptr<const std::string>> outbox;
    std::condition_variable cv;
  };

  /// One accepted connection's thread plus its completion flag, so the
  /// acceptor can reap finished sessions instead of holding every
  /// thread object until Stop.
  struct Session {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  /// The bootstrap image pinned together with the sequence it covers,
  /// so a handshake cannot see one generation's seq and ship another
  /// generation's bytes across a concurrent UpdateSnapshot.
  struct SnapshotImage {
    std::shared_ptr<const std::string> bytes;
    uint64_t seq = 0;
  };

  struct LogEntry {
    uint64_t seq_begin = 0;
    uint64_t seq_end = 0;
    std::shared_ptr<const std::string> framed;
  };

  void AcceptLoop();
  void RunSession(int fd);
  void ReadAcks(const std::shared_ptr<Replica>& replica);
  /// Sends one framed buffer, re-checking stop/degrade/lag on every
  /// send-timeout tick. False when the session must end.
  bool SendFrameChecked(const std::shared_ptr<Replica>& replica,
                        const std::string& frame);
  /// True when the replica's event lag is past max_lag_events AND the
  /// cutoff applies (join-backlog drain is exempt). mu_ held.
  bool LagCutoffLocked(const Replica& replica, uint64_t built) const;
  /// Marks the replica degraded and severs its socket. mu_ held.
  void DegradeLocked(Replica* replica, const char* reason);
  void UpdateGaugesLocked();
  /// Joins and erases finished session threads. sessions_mu_ held.
  void ReapSessionsLocked();
  /// Loads (and caches) the snapshot image + its covered sequence.
  /// nullptr when no image is configured or the file is unreadable.
  std::shared_ptr<const SnapshotImage> Snapshot();
  /// Whether a bootstrap image is offered; `*seq` (optional) receives
  /// the sequence the current image covers.
  bool SnapshotOffered(uint64_t* seq = nullptr) const;

  ReplicationFanoutOptions options_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> built_seq_{0};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;

  mutable std::mutex mu_;
  std::condition_variable ack_cv_;
  std::vector<std::shared_ptr<Replica>> replicas_;
  std::deque<LogEntry> log_;
  /// seq_end of the newest delta trimmed out of log_ (0 = nothing
  /// trimmed): a HELLO.applied_seq below this is a bootstrap gap.
  uint64_t trimmed_through_seq_ = 0;
  uint64_t seed_graph_epoch_ = 0;
  int64_t seed_graph_edges_ = 0;
  int64_t degraded_total_ = 0;

  mutable std::mutex sessions_mu_;
  std::vector<Session> sessions_;

  mutable std::mutex snapshot_mu_;
  std::string snapshot_path_;
  uint64_t snapshot_seq_ = 0;
  std::shared_ptr<const SnapshotImage> snapshot_cache_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_REPLICATION_FANOUT_H_
