#include "serve/delta_applier.h"

#include <utility>

#include "util/logging.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {

DeltaApplierRecommender::DeltaApplierRecommender(DeltaApplierOptions options)
    : options_(options) {
  SIMGRAPH_CHECK_GT(options_.num_stripes, 0);
}

Status DeltaApplierRecommender::Train(const Dataset& dataset,
                                      int64_t train_end) {
  if (options_.graph_image != nullptr &&
      dataset.num_users() != options_.graph_image->num_nodes()) {
    return Status::InvalidArgument(
        "dataset population disagrees with the pinned graph image");
  }
  return state_.Init(dataset, train_end, options_.freshness_window,
                     options_.num_stripes);
}

void DeltaApplierRecommender::SeedSnapshot(
    std::shared_ptr<const SimGraph> snapshot, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
  graph_epoch_ = epoch;
}

void DeltaApplierRecommender::SeedRemoteGraphStats(uint64_t epoch,
                                                   int64_t edges) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  remote_stats_ = true;
  remote_edges_ = edges;
  graph_epoch_ = epoch;
}

AffectedUsers DeltaApplierRecommender::ObserveAffected(
    const RetweetEvent& event) {
  (void)event;
  SIMGRAPH_CHECK(false)
      << "DeltaApplier shards consume SimGraphDeltas, never raw events; "
         "publish through the sharded front door (docs/ingest.md)";
  return AffectedUsers{};
}

void DeltaApplierRecommender::BindShard(int32_t shard) {
  if (shard < 0) return;
  shard_apply_us_ = &metrics::Registry::Global().histogram(
      metrics::ShardMetricName("serve.ingest.delta.apply_us", shard));
}

AffectedUsers DeltaApplierRecommender::ApplyDelta(const SimGraphDelta& delta) {
  SIMGRAPH_CHECK(state_.initialized()) << "Train must be called first";
  const bool metrics_on = metrics::Enabled();
  WallTimer apply_timer;

  // Replay in recorded order — consumed marks before deposits, the
  // order the builder mutated its own state in, so the replica stays
  // bit-identical. ReplayDeltaOps batches the ops per stripe lock,
  // which is what keeps a shard's replay cost far below the full
  // update it stands in for.
  state_.ReplayDeltaOps(delta);
  if (delta.evict_before > 0) state_.EvictStale(delta.evict_before);
  if (delta.has_flag(SimGraphDelta::kFlagSnapshotRefresh)) {
    // In-process shards receive the new snapshot object alongside the
    // flag; a remote replica gets the flag only (SGDL never serializes
    // the pointer) and still must advance its reported epoch so epoch
    // swaps stay observable across the wire (docs/replication.md).
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (delta.snapshot != nullptr) snapshot_ = delta.snapshot;
    graph_epoch_ = delta.snapshot_epoch;
  }
  if (delta.seq_end > applied_delta_seq_) applied_delta_seq_ = delta.seq_end;

  if (metrics_on) {
    const double us = apply_timer.ElapsedSeconds() * 1e6;
    SIMGRAPH_HISTOGRAM_RECORD("serve.ingest.delta.apply_us", us);
    if (shard_apply_us_ != nullptr) shard_apply_us_->Record(us);
  }

  // The builder already computed exactly whose cached answers the
  // covered events may have changed.
  AffectedUsers affected;
  affected.users = delta.invalidated;
  return affected;
}

std::vector<ScoredTweet> DeltaApplierRecommender::Recommend(UserId user,
                                                            Timestamp now,
                                                            int32_t k) {
  return RecommendUntil(user, now, k,
                        std::chrono::steady_clock::time_point::max())
      .tweets;
}

RecommendOutcome DeltaApplierRecommender::RecommendUntil(
    UserId user, Timestamp now, int32_t k,
    std::chrono::steady_clock::time_point deadline) {
  SIMGRAPH_CHECK(state_.initialized()) << "Train must be called first";
  return state_.ScanTopK(user, now, k, deadline);
}

std::shared_ptr<const SimGraph> DeltaApplierRecommender::GraphSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t DeltaApplierRecommender::graph_epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return graph_epoch_;
}

bool DeltaApplierRecommender::GraphStats(uint64_t* epoch,
                                         int64_t* edges) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ != nullptr) {
    *epoch = graph_epoch_;
    *edges = snapshot_->graph.num_edges();
    return true;
  }
  if (remote_stats_) {
    *epoch = graph_epoch_;
    *edges = remote_edges_;
    return true;
  }
  return false;
}

}  // namespace serve
}  // namespace simgraph
