#include "serve/wire_protocol.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "util/metrics.h"

namespace simgraph {
namespace serve {
namespace {

/// Minimal parser for one *flat* JSON object: string keys mapping to
/// string, number, or boolean values. No nesting, no arrays — the wire
/// protocol never needs them on the request side, and keeping the
/// parser this small means no external JSON dependency.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view input) : input_(input) {}

  Status Parse(std::unordered_map<std::string, std::string>* strings,
               std::unordered_map<std::string, double>* numbers) {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return TrailingCheck();
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return Error("expected string key");
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      if (Peek() == '"') {
        std::string value;
        if (!ParseString(&value)) return Error("bad string value");
        (*strings)[key] = std::move(value);
      } else if (Peek() == 't' || Peek() == 'f') {
        if (ConsumeWord("true")) {
          (*numbers)[key] = 1.0;
        } else if (ConsumeWord("false")) {
          (*numbers)[key] = 0.0;
        } else {
          return Error("bad literal");
        }
      } else {
        double value = 0.0;
        if (!ParseNumber(&value)) return Error("bad number value");
        (*numbers)[key] = value;
      }
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return TrailingCheck();
      return Error("expected ',' or '}'");
    }
  }

 private:
  char Peek() const {
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeWord(std::string_view word) {
    if (input_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= input_.size()) return false;
        const char esc = input_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default: return false;  // \uXXXX etc. unsupported on purpose
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }
  bool ParseNumber(double* out) {
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '-' || input_[pos_] == '+' ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(input_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }
  Status TrailingCheck() {
    SkipSpace();
    if (pos_ != input_.size()) return Error("trailing characters");
    return Status::Ok();
  }
  Status Error(std::string_view what) const {
    return Status::InvalidArgument("wire protocol: " + std::string(what));
  }

  std::string_view input_;
  size_t pos_ = 0;
};

int64_t GetInt(const std::unordered_map<std::string, double>& numbers,
               const std::string& key, int64_t fallback) {
  const auto it = numbers.find(key);
  return it == numbers.end() ? fallback : static_cast<int64_t>(it->second);
}

std::string EscapeJson(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

}  // namespace

StatusOr<WireRequest> ParseRequestLine(std::string_view line) {
  std::unordered_map<std::string, std::string> strings;
  std::unordered_map<std::string, double> numbers;
  FlatJsonParser parser(line);
  SIMGRAPH_RETURN_IF_ERROR(parser.Parse(&strings, &numbers));
  const auto op_it = strings.find("op");
  if (op_it == strings.end()) {
    return Status::InvalidArgument("wire protocol: missing \"op\"");
  }
  WireRequest request;
  const std::string& op = op_it->second;
  if (op == "recommend") {
    request.op = WireRequest::Op::kRecommend;
    request.user = static_cast<UserId>(GetInt(numbers, "user", -1));
    request.now = GetInt(numbers, "now", 0);
    request.k = static_cast<int32_t>(GetInt(numbers, "k", 10));
  } else if (op == "event") {
    request.op = WireRequest::Op::kEvent;
    request.tweet = GetInt(numbers, "tweet", -1);
    request.user = static_cast<UserId>(GetInt(numbers, "user", -1));
    request.time = GetInt(numbers, "time", 0);
    if (request.tweet < 0) {
      return Status::InvalidArgument("wire protocol: event needs \"tweet\"");
    }
    if (request.user < 0) {
      return Status::InvalidArgument("wire protocol: event needs \"user\"");
    }
  } else if (op == "wait_applied") {
    request.op = WireRequest::Op::kWaitApplied;
    request.seq = static_cast<uint64_t>(GetInt(numbers, "seq", 0));
  } else if (op == "stats") {
    request.op = WireRequest::Op::kStats;
  } else if (op == "stats-window") {
    request.op = WireRequest::Op::kStatsWindow;
    request.limit = static_cast<int32_t>(GetInt(numbers, "n", 16));
  } else if (op == "slow-log") {
    request.op = WireRequest::Op::kSlowLog;
    request.limit = static_cast<int32_t>(GetInt(numbers, "n", 16));
  } else if (op == "metrics") {
    request.op = WireRequest::Op::kMetrics;
  } else if (op == "ping") {
    request.op = WireRequest::Op::kPing;
  } else {
    return Status::InvalidArgument("wire protocol: unknown op \"" + op +
                                   "\"");
  }
  return request;
}

void AppendEventAck(std::string* out, uint64_t seq) {
  *out += "{\"ok\":true,\"op\":\"event\",\"seq\":";
  *out += std::to_string(seq);
  *out += "}";
}

std::string FormatEventAck(uint64_t seq) {
  std::string out;
  AppendEventAck(&out, seq);
  return out;
}

void AppendRecommendResponse(std::string* out, UserId user,
                             uint64_t request_id,
                             const std::vector<ScoredTweet>& tweets,
                             bool cache_hit, bool degraded,
                             uint64_t applied_seq) {
  *out += "{\"ok\":true,\"op\":\"recommend\",\"user\":";
  *out += std::to_string(user);
  *out += ",\"request_id\":";
  *out += std::to_string(request_id);
  *out += ",\"cache_hit\":";
  *out += cache_hit ? "true" : "false";
  *out += ",\"degraded\":";
  *out += degraded ? "true" : "false";
  *out += ",\"applied_seq\":";
  *out += std::to_string(applied_seq);
  *out += ",\"tweets\":[";
  for (size_t i = 0; i < tweets.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "{\"id\":";
    *out += std::to_string(tweets[i].tweet);
    *out += ",\"score\":";
    AppendDouble(out, tweets[i].score);
    *out += "}";
  }
  *out += "]}";
}

std::string FormatRecommendResponse(UserId user, uint64_t request_id,
                                    const std::vector<ScoredTweet>& tweets,
                                    bool cache_hit, bool degraded,
                                    uint64_t applied_seq) {
  std::string out;
  AppendRecommendResponse(&out, user, request_id, tweets, cache_hit,
                          degraded, applied_seq);
  return out;
}

void AppendWaitAppliedAck(std::string* out, uint64_t seq) {
  *out += "{\"ok\":true,\"op\":\"wait_applied\",\"seq\":";
  *out += std::to_string(seq);
  *out += "}";
}

std::string FormatWaitAppliedAck(uint64_t seq) {
  std::string out;
  AppendWaitAppliedAck(&out, seq);
  return out;
}

void AppendStats(std::string* out, const BackendStats& stats,
                 const std::string& metrics_json) {
  *out += "{\"ok\":true,\"op\":\"stats\",\"applied_seq\":";
  *out += std::to_string(stats.applied_seq);
  *out += ",\"cached_entries\":";
  *out += std::to_string(stats.cached_entries);
  *out += ",\"graph_epoch\":";
  *out += std::to_string(stats.graph_epoch);
  *out += ",\"graph_edges\":";
  *out += std::to_string(stats.graph_edges);
  *out += ",\"num_shards\":";
  *out += std::to_string(stats.shards.size());
  *out += ",\"shards\":[";
  for (size_t i = 0; i < stats.shards.size(); ++i) {
    const ShardStats& shard = stats.shards[i];
    if (i > 0) *out += ",";
    *out += "{\"applied_seq\":" + std::to_string(shard.applied_seq) +
            ",\"cached_entries\":" + std::to_string(shard.cached_entries) +
            ",\"graph_epoch\":" + std::to_string(shard.graph_epoch) +
            ",\"graph_edges\":" + std::to_string(shard.graph_edges) + "}";
  }
  *out += "]";
  if (!metrics_json.empty()) {
    // Embedded verbatim: the compact registry snapshot is already JSON.
    *out += ",\"metrics\":";
    *out += metrics_json;
  }
  *out += "}";
}

std::string FormatStats(const BackendStats& stats,
                        const std::string& metrics_json) {
  std::string out;
  AppendStats(&out, stats, metrics_json);
  return out;
}

void AppendStatsWindow(std::string* out,
                       const std::vector<std::string>& records) {
  *out += "{\"ok\":true,\"op\":\"stats-window\",\"windows\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) *out += ",";
    // Each record is a complete JSON object serialized by the
    // TimeseriesRecorder; embedded verbatim like FormatStats' metrics.
    *out += records[i];
  }
  *out += "]}";
}

std::string FormatStatsWindow(const std::vector<std::string>& records) {
  std::string out;
  AppendStatsWindow(&out, records);
  return out;
}

void AppendSlowRequestJson(std::string* out, const SlowRequestEntry& entry) {
  *out += "{\"request_id\":" + std::to_string(entry.request_id) +
          ",\"shard\":" + std::to_string(entry.shard) +
          ",\"window\":" + std::to_string(entry.window) +
          ",\"user\":" + std::to_string(entry.user) +
          ",\"total_us\":" + std::to_string(entry.total_us) +
          ",\"cache_hit\":" + (entry.cache_hit ? "true" : "false") +
          ",\"degraded\":" + (entry.degraded ? "true" : "false") +
          ",\"stages\":{";
  for (int i = 0; i < entry.num_stages; ++i) {
    if (i > 0) *out += ",";
    *out += "\"";
    *out += EscapeJson(entry.stages[i].name);
    *out += "\":";
    *out += std::to_string(entry.stages[i].micros);
  }
  *out += "}}";
}

void AppendSlowLog(std::string* out,
                   const std::vector<SlowRequestEntry>& entries) {
  *out += "{\"ok\":true,\"op\":\"slow-log\",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) *out += ",";
    AppendSlowRequestJson(out, entries[i]);
  }
  *out += "]}";
}

std::string FormatSlowLog(const std::vector<SlowRequestEntry>& entries) {
  std::string out;
  AppendSlowLog(&out, entries);
  return out;
}

void AppendPong(std::string* out) { *out += "{\"ok\":true,\"op\":\"ping\"}"; }

std::string FormatPong() {
  std::string out;
  AppendPong(&out);
  return out;
}

void AppendError(std::string* out, std::string_view message) {
  *out += "{\"ok\":false,\"error\":\"";
  *out += EscapeJson(message);
  *out += "\"}";
}

std::string FormatError(std::string_view message) {
  std::string out;
  AppendError(&out, message);
  return out;
}

void NoteReplyBufferUse(size_t capacity_before, const std::string& after) {
  // A fresh std::string per response (the pre-reuse scheme) paid at
  // least one allocation every pass; a pass that fit inside storage the
  // buffer already owned paid none.
  if (capacity_before > 0 && after.size() <= capacity_before) {
    SIMGRAPH_COUNTER_ADD("serve.wire.buffer.reuses", 1);
  } else {
    SIMGRAPH_COUNTER_ADD("serve.wire.buffer.grows", 1);
  }
}

}  // namespace serve
}  // namespace simgraph
