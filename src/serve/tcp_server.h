#ifndef SIMGRAPH_SERVE_TCP_SERVER_H_
#define SIMGRAPH_SERVE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/backend.h"
#include "util/status.h"
#include "util/timeseries.h"

namespace simgraph {
namespace serve {

/// Newline-delimited-JSON front-end of a ServingBackend — a single
/// RecommendationService or a ShardedService — over a loopback TCP
/// socket (wire_protocol.h defines the line format). One thread per
/// connection; connections are independent, so a client blocked in
/// wait_applied never stalls another client's recommends.
///
/// A request line longer than kMaxLineBytes gets exactly one structured
/// error and the connection continues: the overflow is discarded as it
/// streams in (holding at most kMaxLineBytes + one recv chunk in
/// memory) and the error is sent once the line's terminating newline
/// arrives, so framing survives regardless of how the bytes were
/// chunked in transit.
///
/// Binds 127.0.0.1 only: this is an in-process serving harness for
/// benchmarks and tools, not a hardened network daemon.
class TcpServer {
 public:
  /// Longest accepted request line (bytes, excluding the newline).
  static constexpr size_t kMaxLineBytes = 64 * 1024;

  /// `service` must outlive the server and must already be trained and
  /// started.
  explicit TcpServer(ServingBackend* service);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and starts accepting. `port` 0 picks an ephemeral port —
  /// read it back with port().
  Status Start(uint16_t port);

  /// Stops accepting, closes all connections, joins all threads.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Attaches the recorder behind the "stats-window" op. Optional —
  /// without one the op answers with a structured error. Must be set
  /// before Start(); `recorder` must outlive the server.
  void set_timeseries_recorder(timeseries::TimeseriesRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  ServingBackend* service_;
  timeseries::TimeseriesRecorder* recorder_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  /// Connection fds still open; Stop() shuts them down to unblock
  /// workers parked in recv().
  std::vector<int> open_fds_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_TCP_SERVER_H_
