#ifndef SIMGRAPH_SERVE_TCP_SERVER_H_
#define SIMGRAPH_SERVE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/backend.h"
#include "util/status.h"
#include "util/timeseries.h"

namespace simgraph {
namespace serve {

/// Dual-protocol front-end of a ServingBackend — a single
/// RecommendationService or a ShardedService — over a loopback TCP
/// socket. Each connection speaks either newline-delimited JSON
/// (wire_protocol.h, the debuggable default) or the SGRQ binary framing
/// (binary_wire.h, for raw throughput); the first byte decides: an SGRQ
/// hello opts the connection into binary frames, anything else stays
/// NDJSON. One thread per connection; connections are independent, so a
/// client blocked in wait_applied never stalls another client's
/// recommends.
///
/// Each recv pass decodes every complete request it delivered and
/// serves them as one unit: maximal contiguous runs of recommends
/// (pipelined clients) cross the backend as ONE RecommendBatch call —
/// on a ShardedService that is one router hop and one shard lock per
/// shard touched, not per request — and all responses of the pass leave
/// in a single send from one reused reply buffer. The batch window is
/// exactly what the pass delivered: the server never waits for more
/// requests, so an unpipelined client's latency is unchanged.
///
/// A request line longer than kMaxLineBytes gets exactly one structured
/// error and the connection continues: the overflow is discarded as it
/// streams in (holding at most kMaxLineBytes + one recv chunk in
/// memory) and the error is sent once the line's terminating newline
/// arrives, so framing survives regardless of how the bytes were
/// chunked in transit. A binary frame whose length prefix exceeds
/// kMaxLineBytes gets the same treatment (deterministic streamed
/// discard, one error frame, serve.tcp.oversized_frames).
///
/// Binds 127.0.0.1 only: this is an in-process serving harness for
/// benchmarks and tools, not a hardened network daemon.
class TcpServer {
 public:
  /// Longest accepted request line (bytes, excluding the newline), and
  /// equally the largest accepted binary request payload.
  static constexpr size_t kMaxLineBytes = 64 * 1024;

  /// Most requests one backend batch call absorbs; a longer pipelined
  /// run is simply served as several batches. Bounds per-batch latency
  /// (and the shard sub-batch fan-out) without ever delaying a flush.
  static constexpr size_t kMaxBatchRequests = 64;

  /// `service` must outlive the server and must already be trained and
  /// started.
  explicit TcpServer(ServingBackend* service);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and starts accepting. `port` 0 picks an ephemeral port —
  /// read it back with port().
  Status Start(uint16_t port);

  /// Stops accepting, closes all connections, joins all threads.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Attaches the recorder behind the "stats-window" op. Optional —
  /// without one the op answers with a structured error. Must be set
  /// before Start(); `recorder` must outlive the server.
  void set_timeseries_recorder(timeseries::TimeseriesRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  ServingBackend* service_;
  timeseries::TimeseriesRecorder* recorder_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  /// Connection fds still open; Stop() shuts them down to unblock
  /// workers parked in recv().
  std::vector<int> open_fds_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_TCP_SERVER_H_
