#ifndef SIMGRAPH_SERVE_BINARY_WIRE_H_
#define SIMGRAPH_SERVE_BINARY_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/recommender.h"
#include "dataset/types.h"
#include "serve/wire_protocol.h"
#include "util/status.h"

namespace simgraph {
namespace serve {

/// SGRQ — the binary request/response encoding of the serving front-end
/// (docs/serving.md has the full wire reference). It carries the exact
/// op set of the NDJSON protocol in length-prefixed frames with the same
/// layout as the SGDL/SGRP formats:
///
///   u32 LE payload length | u8 op | payload bytes
///
/// A connection opts in by leading with an 8-byte hello
/// (u32 magic "SGRQ" | u16 version | u16 flags); the server echoes its
/// own hello and both sides speak frames from then on. Any other first
/// byte keeps the connection in NDJSON mode — no NDJSON request can
/// start with 'S' (a line must open with '{' or whitespace to parse), so
/// the first byte is an unambiguous discriminator. NDJSON stays the
/// debuggable fallback; SGRQ exists for raw request throughput (no JSON
/// parse/format, one memcpy-shaped decode per request).
///
/// Like SGRP, every decoder treats the peer as hostile: lengths are
/// capped (an oversized frame is discarded deterministically, answered
/// with one error frame, and counted — mirroring the NDJSON
/// oversized-line handling), magic/version are vetted before any frame
/// is parsed, and a malformed payload answers with an error frame
/// instead of crashing or desyncing the stream.
enum class BinaryOp : uint8_t {
  kError = 0,        // response only: utf8 reason
  kPing = 1,         // request: empty            response: empty
  kEvent = 2,        // request: i64 tweet, i32 user, i64 time
                     // response: u64 seq
  kRecommend = 3,    // request: i32 user, i64 now, i32 k
                     // response: see BinaryRecommendResponse
  kWaitApplied = 4,  // request: u64 seq          response: u64 seq
  kStats = 5,        // request: empty            response: utf8 JSON
  kStatsWindow = 6,  // request: i32 n            response: utf8 JSON
  kSlowLog = 7,      // request: i32 n            response: utf8 JSON
  kMetrics = 8,      // request: empty  response: Prometheus text
};

/// "SGRQ" little-endian, leading the connection hello.
inline constexpr uint32_t kBinaryWireMagic = 0x51524753;
inline constexpr uint16_t kBinaryWireVersion = 1;

/// The 8-byte connection hello: u32 magic | u16 version | u16 flags.
inline constexpr size_t kBinaryHelloBytes = 8;

/// Longest accepted *request* payload — the binary twin of
/// TcpServer::kMaxLineBytes. Responses (stats with an embedded metrics
/// snapshot, Prometheus text) may be longer; requests never are.
inline constexpr uint32_t kMaxBinaryRequestPayload = 64 * 1024;

/// Frame header: u32 LE payload length + u8 op.
inline constexpr size_t kBinaryFrameHeaderBytes = 5;

/// Serializes the hello / validates a received one. Parse fails on a
/// wrong magic or an unsupported version (flags are reserved, ignored).
void AppendBinaryHello(std::string* out);
Status ParseBinaryHello(std::string_view bytes);

/// Incremental frame decoder over a connection buffer.
struct BinaryFrameView {
  BinaryOp op = BinaryOp::kError;
  /// Payload bytes, viewing into the buffer passed to DecodeBinaryFrame
  /// — invalidated by any mutation of that buffer.
  std::string_view payload;
  /// Total frame size (header + payload) to consume from the buffer.
  size_t frame_bytes = 0;
};

enum class BinaryDecodeStatus {
  kNeedMore,   ///< incomplete header or payload; read more bytes
  kFrame,      ///< one complete frame decoded into the view
  kOversized,  ///< length prefix exceeds `max_payload`; skip the frame
};

struct BinaryDecodeResult {
  BinaryDecodeStatus status = BinaryDecodeStatus::kNeedMore;
  BinaryFrameView frame;           // kFrame only
  uint64_t oversized_payload = 0;  // kOversized: payload bytes to skip
};

/// Examines the front of `buffer` for one frame. Never consumes bytes —
/// the caller erases frame_bytes (kFrame) or streams past the header +
/// oversized_payload bytes (kOversized). The op byte is NOT validated
/// here; unknown ops surface from ParseBinaryRequest so the stream stays
/// framed (mirroring how an unknown NDJSON op is an error, not a
/// disconnect).
BinaryDecodeResult DecodeBinaryFrame(
    std::string_view buffer, uint32_t max_payload = kMaxBinaryRequestPayload);

/// Decodes a request frame's payload into the protocol-neutral
/// WireRequest (the same struct the NDJSON parser produces, so the
/// server dispatches both protocols through one switch). Fails on an
/// unknown op or a payload whose size does not match the op's layout.
StatusOr<WireRequest> ParseBinaryRequest(BinaryOp op,
                                         std::string_view payload);

/// Encoders: each appends one complete frame (header + payload) to *out
/// WITHOUT clearing it, so a per-connection reply buffer accumulates a
/// whole batch of responses and hits the socket in one send.
void AppendBinaryRequest(std::string* out, const WireRequest& request);
void AppendBinaryErrorFrame(std::string* out, std::string_view message);
void AppendBinaryEventAck(std::string* out, uint64_t seq);
void AppendBinaryWaitAppliedAck(std::string* out, uint64_t seq);
void AppendBinaryPong(std::string* out);
/// stats / stats-window / slow-log (JSON bodies, byte-identical to the
/// NDJSON reply) and metrics (Prometheus text) travel as opaque text.
void AppendBinaryTextFrame(std::string* out, BinaryOp op,
                           std::string_view text);
void AppendBinaryRecommendResponse(std::string* out, UserId user,
                                   uint64_t request_id,
                                   const std::vector<ScoredTweet>& tweets,
                                   bool cache_hit, bool degraded,
                                   uint64_t applied_seq);

/// Client-side decode of a kRecommend response payload.
struct BinaryRecommendResponse {
  UserId user = 0;
  uint64_t request_id = 0;
  uint64_t applied_seq = 0;
  bool cache_hit = false;
  bool degraded = false;
  std::vector<ScoredTweet> tweets;
};
Status ParseBinaryRecommendResponse(std::string_view payload,
                                    BinaryRecommendResponse* out);

/// u64 LE payload of event acks / wait_applied acks.
Status ParseBinaryU64(std::string_view payload, uint64_t* value);

/// Blocking client helpers over a connected socket (bench + tests; the
/// server never blocks on a frame). SendBinaryHandshake sends the hello
/// and vets the echoed one; ReadBinaryFrameBlocking reads exactly one
/// frame, rejecting payloads beyond `max_payload`. IoError on EOF.
Status SendBinaryHandshake(int fd);
Status ReadBinaryFrameBlocking(int fd, BinaryOp* op, std::string* payload,
                               uint64_t max_payload = 64ull << 20);

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_BINARY_WIRE_H_
