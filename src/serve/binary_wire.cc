#include "serve/binary_wire.h"

#include <sys/socket.h>

#include <cstring>

namespace simgraph {
namespace serve {
namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(b[0]) | static_cast<uint16_t>(b[1]) << 8;
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

void PutHeader(std::string* out, BinaryOp op, size_t payload_len) {
  PutU32(out, static_cast<uint32_t>(payload_len));
  out->push_back(static_cast<char>(op));
}

/// Overwrites the length field of a header written with a placeholder
/// once the payload size is known (saves a payload-sized copy).
void PatchLength(std::string* out, size_t header_pos, size_t payload_len) {
  const uint32_t v = static_cast<uint32_t>(payload_len);
  for (int i = 0; i < 4; ++i) {
    (*out)[header_pos + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

}  // namespace

void AppendBinaryHello(std::string* out) {
  PutU32(out, kBinaryWireMagic);
  PutU16(out, kBinaryWireVersion);
  PutU16(out, 0);  // flags, reserved
}

Status ParseBinaryHello(std::string_view bytes) {
  if (bytes.size() < kBinaryHelloBytes) {
    return Status::InvalidArgument("binary wire: short hello");
  }
  if (GetU32(bytes.data()) != kBinaryWireMagic) {
    return Status::InvalidArgument("binary wire: bad magic (want \"SGRQ\")");
  }
  const uint16_t version = GetU16(bytes.data() + 4);
  if (version != kBinaryWireVersion) {
    return Status::InvalidArgument("binary wire: unsupported version " +
                                   std::to_string(version));
  }
  return Status::Ok();
}

BinaryDecodeResult DecodeBinaryFrame(std::string_view buffer,
                                     uint32_t max_payload) {
  BinaryDecodeResult result;
  if (buffer.size() < kBinaryFrameHeaderBytes) return result;  // kNeedMore
  const uint32_t payload_len = GetU32(buffer.data());
  if (payload_len > max_payload) {
    result.status = BinaryDecodeStatus::kOversized;
    result.oversized_payload = payload_len;
    return result;
  }
  const size_t total = kBinaryFrameHeaderBytes + payload_len;
  if (buffer.size() < total) return result;  // kNeedMore
  result.status = BinaryDecodeStatus::kFrame;
  result.frame.op = static_cast<BinaryOp>(
      static_cast<uint8_t>(buffer[kBinaryFrameHeaderBytes - 1]));
  result.frame.payload =
      buffer.substr(kBinaryFrameHeaderBytes, payload_len);
  result.frame.frame_bytes = total;
  return result;
}

StatusOr<WireRequest> ParseBinaryRequest(BinaryOp op,
                                         std::string_view payload) {
  const auto need = [&](size_t bytes) {
    return payload.size() == bytes
               ? Status::Ok()
               : Status::InvalidArgument(
                     "binary wire: payload size " +
                     std::to_string(payload.size()) + " (want " +
                     std::to_string(bytes) + ")");
  };
  WireRequest request;
  switch (op) {
    case BinaryOp::kPing:
      SIMGRAPH_RETURN_IF_ERROR(need(0));
      request.op = WireRequest::Op::kPing;
      return request;
    case BinaryOp::kEvent:
      SIMGRAPH_RETURN_IF_ERROR(need(20));
      request.op = WireRequest::Op::kEvent;
      request.tweet = static_cast<TweetId>(GetU64(payload.data()));
      request.user = static_cast<UserId>(GetU32(payload.data() + 8));
      request.time = static_cast<Timestamp>(GetU64(payload.data() + 12));
      if (request.tweet < 0) {
        return Status::InvalidArgument("binary wire: event needs tweet >= 0");
      }
      if (request.user < 0) {
        return Status::InvalidArgument("binary wire: event needs user >= 0");
      }
      return request;
    case BinaryOp::kRecommend:
      SIMGRAPH_RETURN_IF_ERROR(need(16));
      request.op = WireRequest::Op::kRecommend;
      request.user = static_cast<UserId>(GetU32(payload.data()));
      request.now = static_cast<Timestamp>(GetU64(payload.data() + 4));
      request.k = static_cast<int32_t>(GetU32(payload.data() + 12));
      return request;
    case BinaryOp::kWaitApplied:
      SIMGRAPH_RETURN_IF_ERROR(need(8));
      request.op = WireRequest::Op::kWaitApplied;
      request.seq = GetU64(payload.data());
      return request;
    case BinaryOp::kStats:
      SIMGRAPH_RETURN_IF_ERROR(need(0));
      request.op = WireRequest::Op::kStats;
      return request;
    case BinaryOp::kStatsWindow:
      SIMGRAPH_RETURN_IF_ERROR(need(4));
      request.op = WireRequest::Op::kStatsWindow;
      request.limit = static_cast<int32_t>(GetU32(payload.data()));
      return request;
    case BinaryOp::kSlowLog:
      SIMGRAPH_RETURN_IF_ERROR(need(4));
      request.op = WireRequest::Op::kSlowLog;
      request.limit = static_cast<int32_t>(GetU32(payload.data()));
      return request;
    case BinaryOp::kMetrics:
      SIMGRAPH_RETURN_IF_ERROR(need(0));
      request.op = WireRequest::Op::kMetrics;
      return request;
    case BinaryOp::kError:
      break;  // response-only; fall through to the unknown-op error
  }
  return Status::InvalidArgument(
      "binary wire: unknown op " +
      std::to_string(static_cast<unsigned>(op)));
}

void AppendBinaryRequest(std::string* out, const WireRequest& request) {
  switch (request.op) {
    case WireRequest::Op::kPing:
      PutHeader(out, BinaryOp::kPing, 0);
      return;
    case WireRequest::Op::kEvent:
      PutHeader(out, BinaryOp::kEvent, 20);
      PutU64(out, static_cast<uint64_t>(request.tweet));
      PutU32(out, static_cast<uint32_t>(request.user));
      PutU64(out, static_cast<uint64_t>(request.time));
      return;
    case WireRequest::Op::kRecommend:
      PutHeader(out, BinaryOp::kRecommend, 16);
      PutU32(out, static_cast<uint32_t>(request.user));
      PutU64(out, static_cast<uint64_t>(request.now));
      PutU32(out, static_cast<uint32_t>(request.k));
      return;
    case WireRequest::Op::kWaitApplied:
      PutHeader(out, BinaryOp::kWaitApplied, 8);
      PutU64(out, request.seq);
      return;
    case WireRequest::Op::kStats:
      PutHeader(out, BinaryOp::kStats, 0);
      return;
    case WireRequest::Op::kStatsWindow:
      PutHeader(out, BinaryOp::kStatsWindow, 4);
      PutU32(out, static_cast<uint32_t>(request.limit));
      return;
    case WireRequest::Op::kSlowLog:
      PutHeader(out, BinaryOp::kSlowLog, 4);
      PutU32(out, static_cast<uint32_t>(request.limit));
      return;
    case WireRequest::Op::kMetrics:
      PutHeader(out, BinaryOp::kMetrics, 0);
      return;
  }
}

void AppendBinaryErrorFrame(std::string* out, std::string_view message) {
  PutHeader(out, BinaryOp::kError, message.size());
  out->append(message.data(), message.size());
}

void AppendBinaryEventAck(std::string* out, uint64_t seq) {
  PutHeader(out, BinaryOp::kEvent, 8);
  PutU64(out, seq);
}

void AppendBinaryWaitAppliedAck(std::string* out, uint64_t seq) {
  PutHeader(out, BinaryOp::kWaitApplied, 8);
  PutU64(out, seq);
}

void AppendBinaryPong(std::string* out) {
  PutHeader(out, BinaryOp::kPing, 0);
}

void AppendBinaryTextFrame(std::string* out, BinaryOp op,
                           std::string_view text) {
  PutHeader(out, op, text.size());
  out->append(text.data(), text.size());
}

void AppendBinaryRecommendResponse(std::string* out, UserId user,
                                   uint64_t request_id,
                                   const std::vector<ScoredTweet>& tweets,
                                   bool cache_hit, bool degraded,
                                   uint64_t applied_seq) {
  const size_t header_pos = out->size();
  PutHeader(out, BinaryOp::kRecommend, 0);  // length patched below
  const size_t payload_pos = out->size();
  PutU32(out, static_cast<uint32_t>(user));
  PutU64(out, request_id);
  PutU64(out, applied_seq);
  out->push_back(static_cast<char>((cache_hit ? 1 : 0) |
                                   (degraded ? 2 : 0)));
  PutU32(out, static_cast<uint32_t>(tweets.size()));
  for (const ScoredTweet& t : tweets) {
    PutU64(out, static_cast<uint64_t>(t.tweet));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(t.score));
    std::memcpy(&bits, &t.score, sizeof(bits));
    PutU64(out, bits);  // raw IEEE-754 bits: scores survive bit-exactly
  }
  PatchLength(out, header_pos, out->size() - payload_pos);
}

Status ParseBinaryRecommendResponse(std::string_view payload,
                                    BinaryRecommendResponse* out) {
  constexpr size_t kFixed = 4 + 8 + 8 + 1 + 4;
  if (payload.size() < kFixed) {
    return Status::InvalidArgument("binary wire: short recommend response");
  }
  out->user = static_cast<UserId>(GetU32(payload.data()));
  out->request_id = GetU64(payload.data() + 4);
  out->applied_seq = GetU64(payload.data() + 12);
  const uint8_t flags = static_cast<uint8_t>(payload[20]);
  out->cache_hit = (flags & 1) != 0;
  out->degraded = (flags & 2) != 0;
  const uint32_t count = GetU32(payload.data() + 21);
  if (payload.size() != kFixed + static_cast<size_t>(count) * 16) {
    return Status::InvalidArgument(
        "binary wire: recommend response size mismatch");
  }
  out->tweets.clear();
  out->tweets.reserve(count);
  const char* p = payload.data() + kFixed;
  for (uint32_t i = 0; i < count; ++i, p += 16) {
    ScoredTweet t;
    t.tweet = static_cast<TweetId>(GetU64(p));
    const uint64_t bits = GetU64(p + 8);
    std::memcpy(&t.score, &bits, sizeof(t.score));
    out->tweets.push_back(t);
  }
  return Status::Ok();
}

Status ParseBinaryU64(std::string_view payload, uint64_t* value) {
  if (payload.size() != 8) {
    return Status::InvalidArgument("binary wire: want a u64 payload");
  }
  *value = GetU64(payload.data());
  return Status::Ok();
}

Status SendBinaryHandshake(int fd) {
  std::string hello;
  AppendBinaryHello(&hello);
  size_t sent = 0;
  while (sent < hello.size()) {
    const ssize_t n = ::send(fd, hello.data() + sent, hello.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return Status::IoError("binary wire: hello send failed");
    sent += static_cast<size_t>(n);
  }
  char ack[kBinaryHelloBytes];
  size_t got = 0;
  while (got < sizeof(ack)) {
    const ssize_t n = ::recv(fd, ack + got, sizeof(ack) - got, 0);
    if (n <= 0) return Status::IoError("binary wire: hello ack EOF");
    got += static_cast<size_t>(n);
  }
  return ParseBinaryHello(std::string_view(ack, sizeof(ack)));
}

Status ReadBinaryFrameBlocking(int fd, BinaryOp* op, std::string* payload,
                               uint64_t max_payload) {
  char header[kBinaryFrameHeaderBytes];
  size_t got = 0;
  while (got < sizeof(header)) {
    const ssize_t n = ::recv(fd, header + got, sizeof(header) - got, 0);
    if (n <= 0) return Status::IoError("binary wire: frame header EOF");
    got += static_cast<size_t>(n);
  }
  const uint32_t len = GetU32(header);
  if (len > max_payload) {
    return Status::InvalidArgument("binary wire: frame payload " +
                                   std::to_string(len) + " exceeds cap");
  }
  *op = static_cast<BinaryOp>(static_cast<uint8_t>(header[4]));
  payload->resize(len);
  size_t read = 0;
  while (read < len) {
    const ssize_t n = ::recv(fd, payload->data() + read, len - read, 0);
    if (n <= 0) return Status::IoError("binary wire: frame payload EOF");
    read += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace simgraph
