#ifndef SIMGRAPH_SERVE_RESULT_CACHE_H_
#define SIMGRAPH_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/recommender.h"
#include "dataset/types.h"

namespace simgraph {
namespace serve {

/// Per-user cache of top-k recommendation lists with TTL *and* precise
/// versioned invalidation, shared by the serving layer
/// (docs/serving.md has the full semantics).
///
/// Each user has a monotonically increasing version. Invalidate(u) bumps
/// the version and drops the cached entry; Put is compare-and-swap on the
/// version observed before computing, so a result computed concurrently
/// with an invalidating event can never be cached (the classic stale-read
/// race).
///
/// A cached entry computed at simulated time T for budget K serves a
/// request (user, now, k) when:
///   * the user's version is unchanged since the entry was stored, and
///   * T <= now <= T + ttl (ttl 0 means "same simulated instant only"),
///   * k <= K, or the stored list is complete (the user had fewer than K
///     candidates, so any k sees the whole list).
/// The served list is the first min(k, size) entries — valid because the
/// Recommender determinism contract makes top-k lists prefix-consistent.
///
/// Locks are striped over users, so readers of different stripes never
/// contend and the single ingest thread invalidating user u only blocks
/// readers of u's stripe.
class ResultCache {
 public:
  /// `ttl` is in simulated seconds (>= 0).
  ResultCache(int32_t num_users, Timestamp ttl, int32_t num_stripes = 64);

  struct Lookup {
    bool hit = false;
    std::vector<ScoredTweet> tweets;  // only filled on hit
    /// The user's version at lookup time; pass to Put unchanged.
    uint64_t version = 0;
  };

  /// Looks up (user, now, k); on miss, `version` still carries the value
  /// Put needs.
  Lookup Get(UserId user, Timestamp now, int32_t k);

  /// Stores a complete top-k list computed at `computed_at` while the
  /// user's version was `version`. Returns false (and stores nothing)
  /// when the version moved — i.e. an event invalidated the user while
  /// the list was being computed.
  bool Put(UserId user, Timestamp computed_at, int32_t k,
           std::vector<ScoredTweet> tweets, uint64_t version);

  /// Bumps the user's version and drops any cached entry. Returns true
  /// when an entry was actually dropped.
  bool Invalidate(UserId user);

  /// Invalidates every user (generic recommenders cannot report precise
  /// affected sets). Returns the number of entries dropped.
  int64_t InvalidateAll();

  uint64_t Version(UserId user) const;

  /// Number of currently cached entries.
  int64_t size() const;

  int32_t num_users() const { return static_cast<int32_t>(entries_.size()); }
  Timestamp ttl() const { return ttl_; }

 private:
  struct Entry {
    uint64_t version = 0;
    bool valid = false;
    Timestamp computed_at = 0;
    int32_t k = 0;
    std::vector<ScoredTweet> tweets;
  };
  struct Stripe {
    mutable std::shared_mutex mu;
  };

  Stripe& stripe_of(UserId user) const {
    return *stripes_[static_cast<size_t>(user) % stripes_.size()];
  }

  Timestamp ttl_;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_RESULT_CACHE_H_
