#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "serve/binary_wire.h"
#include "serve/wire_protocol.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/net.h"
#include "util/prom_export.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {
namespace {

bool SendRaw(int fd, const std::string& payload) {
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Which framing a connection speaks; decided by its first byte.
enum class WireMode { kUndecided, kNdjson, kBinary };

/// One decoded-but-unserved request of a recv pass. NDJSON: `text` is
/// the request line. Binary: `op` + `text` (the payload bytes, copied
/// out before the connection buffer is compacted). `oversized` marks
/// the spot where a discarded over-cap request ended; it owes the
/// client exactly one structured error in sequence.
struct PendingRequest {
  bool oversized = false;
  BinaryOp op = BinaryOp::kError;
  std::string text;
};

std::string OversizedMessage(WireMode mode) {
  return mode == WireMode::kBinary
             ? "binary frame payload exceeds " +
                   std::to_string(TcpServer::kMaxLineBytes) + " bytes"
             : "request line exceeds " +
                   std::to_string(TcpServer::kMaxLineBytes) + " bytes";
}

/// Cheap peek for batching: is this entry (almost certainly) a
/// recommend? Binary frames carry the op byte, so the answer is exact;
/// for NDJSON a substring probe suffices — a false positive only
/// demotes the run back to one-at-a-time handling after the real parse.
bool ProbablyRecommend(WireMode mode, const PendingRequest& entry) {
  if (entry.oversized) return false;
  if (mode == WireMode::kBinary) return entry.op == BinaryOp::kRecommend;
  return entry.text.find("\"op\":\"recommend\"") != std::string::npos ||
         entry.text.find("\"op\" : \"recommend\"") != std::string::npos;
}

}  // namespace

TcpServer::TcpServer(ServingBackend* service) : service_(service) {
  SIMGRAPH_CHECK(service != nullptr);
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  // Shared loopback listener (util/net.h): ephemeral-port readback for
  // port 0, EADDRINUSE retry for explicit ports on busy CI runners.
  StatusOr<int> fd = net::ListenLoopback(port, &port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // shutdown() breaks the blocking accept(); close() alone would not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener closed underneath us
    }
    SIMGRAPH_COUNTER_ADD("serve.tcp.connections", 1);
    std::lock_guard<std::mutex> lock(workers_mu_);
    open_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  WireMode mode = WireMode::kUndecided;
  std::string buffer;
  // The per-connection reply buffer: every response of a recv pass is
  // appended here (no per-request string) and the whole pass leaves in
  // one send. clear() keeps the capacity, so steady state allocates
  // nothing (NoteReplyBufferUse keeps score).
  std::string reply;
  reply.reserve(4096);
  std::string scratch;  // reused JSON body for binary text frames
  std::vector<PendingRequest> pending;
  // NDJSON oversized-line discard (see the class comment).
  bool discarding_oversized = false;
  // Binary oversized-frame discard: payload bytes still to stream past.
  uint64_t skip_remaining = 0;
  char chunk[4096];
  while (!stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error
    buffer.append(chunk, static_cast<size_t>(n));

    if (mode == WireMode::kUndecided) {
      // Protocol negotiation on the first meaningful byte: an SGRQ
      // hello leads with 'S', while no NDJSON request can (a line must
      // open with '{' to parse). Whitespace before the first request is
      // insignificant in both protocols.
      size_t start = 0;
      while (start < buffer.size() &&
             (buffer[start] == ' ' || buffer[start] == '\t' ||
              buffer[start] == '\r' || buffer[start] == '\n')) {
        ++start;
      }
      if (start >= buffer.size()) {
        buffer.clear();
        continue;
      }
      if (buffer[start] == 'S') {
        if (buffer.size() - start < kBinaryHelloBytes) continue;
        const Status hello = ParseBinaryHello(
            std::string_view(buffer).substr(start, kBinaryHelloBytes));
        if (!hello.ok()) {
          // A bad magic/version is a client that will never speak
          // either protocol correctly: one error frame, then hang up.
          std::string err;
          AppendBinaryErrorFrame(&err, hello.message());
          SendRaw(fd, err);
          goto done;
        }
        buffer.erase(0, start + kBinaryHelloBytes);
        // Echo our hello so the client knows the server speaks SGRQ
        // (and at which version) before it commits frames.
        std::string ack;
        AppendBinaryHello(&ack);
        if (!SendRaw(fd, ack)) goto done;
        mode = WireMode::kBinary;
        SIMGRAPH_COUNTER_ADD("serve.tcp.binary_connections", 1);
      } else {
        buffer.erase(0, start);
        mode = WireMode::kNdjson;
      }
    }

    // Decode stage: everything complete in the buffer becomes one
    // pending entry, in arrival order. Nothing is served yet.
    pending.clear();
    if (mode == WireMode::kBinary) {
      for (;;) {
        if (skip_remaining > 0) {
          // Mid-discard of an oversized frame: eat bytes, never buffer.
          const uint64_t eat =
              std::min<uint64_t>(buffer.size(), skip_remaining);
          buffer.erase(0, static_cast<size_t>(eat));
          skip_remaining -= eat;
          if (skip_remaining > 0) break;
          // The frame has fully streamed past; it owes one error.
          pending.push_back(PendingRequest{true, BinaryOp::kError, ""});
        }
        const BinaryDecodeResult decoded =
            DecodeBinaryFrame(buffer, kMaxLineBytes);
        if (decoded.status == BinaryDecodeStatus::kNeedMore) break;
        if (decoded.status == BinaryDecodeStatus::kOversized) {
          SIMGRAPH_COUNTER_ADD("serve.tcp.oversized_frames", 1);
          buffer.erase(0, kBinaryFrameHeaderBytes);
          skip_remaining = decoded.oversized_payload;
          continue;
        }
        pending.push_back(PendingRequest{
            false, decoded.frame.op, std::string(decoded.frame.payload)});
        buffer.erase(0, decoded.frame.frame_bytes);
      }
    } else {
      size_t newline;
      while ((newline = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, newline);
        buffer.erase(0, newline + 1);
        if (discarding_oversized) {
          // The tail of a line whose head was already thrown away.
          discarding_oversized = false;
          pending.push_back(PendingRequest{true, BinaryOp::kError, ""});
          continue;
        }
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (line.size() > kMaxLineBytes) {
          // The whole line arrived in one buffer before the cap check
          // saw it; reject it exactly like the streamed case.
          SIMGRAPH_COUNTER_ADD("serve.tcp.oversized_lines", 1);
          pending.push_back(PendingRequest{true, BinaryOp::kError, ""});
          continue;
        }
        pending.push_back(
            PendingRequest{false, BinaryOp::kError, std::move(line)});
      }
      if (!discarding_oversized && buffer.size() > kMaxLineBytes) {
        // The line under assembly already blew the cap: drop what is
        // buffered and keep eating bytes until its newline shows up.
        SIMGRAPH_COUNTER_ADD("serve.tcp.oversized_lines", 1);
        discarding_oversized = true;
        buffer.clear();
      } else if (discarding_oversized) {
        // Still inside the oversized line; nothing here is a request.
        buffer.clear();
      }
    }
    if (pending.empty()) continue;

    // Serve stage: responses append to `reply` in request order; the
    // pass flushes once at the end (and before any blocking wait, so a
    // pipelined client is never deadlocked behind its own wait).
    const bool binary = mode == WireMode::kBinary;
    const size_t reply_capacity_before = reply.capacity();
    size_t idx = 0;
    while (idx < pending.size()) {
      // Batch run: consecutive recommends from a pipelined client cross
      // the backend as ONE RecommendBatch call — on a sharded backend
      // that is one router hop and one shard lock per shard touched.
      size_t run = 0;
      while (idx + run < pending.size() && run < kMaxBatchRequests &&
             ProbablyRecommend(mode, pending[idx + run])) {
        ++run;
      }
      if (run >= 2) {
        std::vector<StatusOr<WireRequest>> parsed_run;
        parsed_run.reserve(run);
        bool all_recommend = true;
        for (size_t i = 0; i < run; ++i) {
          const PendingRequest& entry = pending[idx + i];
          parsed_run.push_back(
              binary ? ParseBinaryRequest(entry.op, entry.text)
                     : ParseRequestLine(entry.text));
          if (!parsed_run.back().ok() ||
              parsed_run.back()->op != WireRequest::Op::kRecommend) {
            all_recommend = false;
          }
        }
        if (all_recommend) {
          // One scope per batch: route_batch and the shards' recommend
          // spans nest under it; encoded responses carry its id.
          trace::RequestScope scope("request/handle_batch");
          scope.set_op("request/recommend_batch");
          scope.SetAttribute("batch", static_cast<int64_t>(run));
          std::vector<RecommendRequest> requests;
          requests.reserve(run);
          for (const StatusOr<WireRequest>& parsed : parsed_run) {
            requests.push_back(
                RecommendRequest{parsed->user, parsed->now, parsed->k});
          }
          const std::vector<RecommendResponse> responses =
              service_->RecommendBatch(requests);
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          for (size_t i = 0; i < run; ++i) {
            const RecommendResponse& response = responses[i];
            if (!response.status.ok()) {
              if (binary) {
                AppendBinaryErrorFrame(&reply, response.status.message());
              } else {
                AppendError(&reply, response.status.message());
                reply += '\n';
              }
            } else if (binary) {
              AppendBinaryRecommendResponse(
                  &reply, requests[i].user, scope.request_id(),
                  response.tweets, response.cache_hit, response.degraded,
                  response.applied_seq);
            } else {
              AppendRecommendResponse(&reply, requests[i].user,
                                      scope.request_id(), response.tweets,
                                      response.cache_hit, response.degraded,
                                      response.applied_seq);
              reply += '\n';
            }
          }
          idx += run;
          continue;
        }
        // A lookalike slipped into the run (possible for NDJSON only);
        // fall through and serve this pass one request at a time.
      }

      const PendingRequest& entry = pending[idx++];
      // One entry is one request: the scope assigns the request id and
      // spans decode through serialize, so the exported trace renders
      // the whole request as one connected tree (docs/observability.md).
      trace::RequestScope scope("request/handle");
      if (entry.oversized) {
        SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
        if (binary) {
          AppendBinaryErrorFrame(&reply, OversizedMessage(mode));
        } else {
          AppendError(&reply, OversizedMessage(mode));
          reply += '\n';
        }
        continue;
      }
      StatusOr<WireRequest> parsed = [&] {
        SIMGRAPH_TRACE_SPAN("request/parse", "serve");
        return binary ? ParseBinaryRequest(entry.op, entry.text)
                      : ParseRequestLine(entry.text);
      }();
      if (!parsed.ok()) {
        SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
        if (binary) {
          AppendBinaryErrorFrame(&reply, parsed.status().message());
        } else {
          AppendError(&reply, parsed.status().message());
          reply += '\n';
        }
        continue;
      }
      const WireRequest& request = *parsed;
      switch (request.op) {
        case WireRequest::Op::kEvent: {
          scope.set_op("request/event");
          const uint64_t seq = service_->Publish(
              RetweetEvent{request.tweet, request.user, request.time});
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          if (seq == 0) {
            if (binary) {
              AppendBinaryErrorFrame(&reply, "service stopped");
            } else {
              AppendError(&reply, "service stopped");
              reply += '\n';
            }
          } else if (binary) {
            AppendBinaryEventAck(&reply, seq);
          } else {
            AppendEventAck(&reply, seq);
            reply += '\n';
          }
          break;
        }
        case WireRequest::Op::kRecommend: {
          scope.set_op("request/recommend");
          scope.SetAttribute("user", request.user);
          const RecommendResponse response = service_->Recommend(
              RecommendRequest{request.user, request.now, request.k});
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          if (!response.status.ok()) {
            if (binary) {
              AppendBinaryErrorFrame(&reply, response.status.message());
            } else {
              AppendError(&reply, response.status.message());
              reply += '\n';
            }
          } else if (binary) {
            AppendBinaryRecommendResponse(
                &reply, request.user, scope.request_id(), response.tweets,
                response.cache_hit, response.degraded, response.applied_seq);
          } else {
            AppendRecommendResponse(&reply, request.user, scope.request_id(),
                                    response.tweets, response.cache_hit,
                                    response.degraded, response.applied_seq);
            reply += '\n';
          }
          break;
        }
        case WireRequest::Op::kWaitApplied: {
          scope.set_op("request/wait_applied");
          // Flush everything already answered before blocking, so a
          // pipelined client sees its earlier replies while it waits.
          if (!reply.empty()) {
            if (!SendRaw(fd, reply)) goto done;
            reply.clear();
          }
          service_->WaitForApplied(request.seq);
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          if (binary) {
            AppendBinaryWaitAppliedAck(&reply, service_->AppliedSeq());
          } else {
            AppendWaitAppliedAck(&reply, service_->AppliedSeq());
            reply += '\n';
          }
          break;
        }
        case WireRequest::Op::kStats: {
          scope.set_op("request/stats");
          std::ostringstream metrics_json;
          metrics::Registry::Global().WriteJson(metrics_json,
                                                /*pretty=*/false);
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          if (binary) {
            scratch.clear();
            AppendStats(&scratch, service_->Stats(), metrics_json.str());
            AppendBinaryTextFrame(&reply, BinaryOp::kStats, scratch);
          } else {
            AppendStats(&reply, service_->Stats(), metrics_json.str());
            reply += '\n';
          }
          break;
        }
        case WireRequest::Op::kStatsWindow: {
          scope.set_op("request/stats_window");
          if (recorder_ == nullptr) {
            SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
            const std::string_view message =
                "no timeseries recorder (start simgraph_served with "
                "--stats-window-ms)";
            if (binary) {
              AppendBinaryErrorFrame(&reply, message);
            } else {
              AppendError(&reply, message);
              reply += '\n';
            }
          } else {
            const std::vector<std::string> records =
                recorder_->RecentJson(request.limit);
            SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
            if (binary) {
              scratch.clear();
              AppendStatsWindow(&scratch, records);
              AppendBinaryTextFrame(&reply, BinaryOp::kStatsWindow, scratch);
            } else {
              AppendStatsWindow(&reply, records);
              reply += '\n';
            }
          }
          break;
        }
        case WireRequest::Op::kSlowLog: {
          scope.set_op("request/slow_log");
          std::vector<SlowRequestEntry> entries;
          service_->CollectSlowRequests(request.limit, &entries);
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          if (binary) {
            scratch.clear();
            AppendSlowLog(&scratch, entries);
            AppendBinaryTextFrame(&reply, BinaryOp::kSlowLog, scratch);
          } else {
            AppendSlowLog(&reply, entries);
            reply += '\n';
          }
          break;
        }
        case WireRequest::Op::kMetrics: {
          scope.set_op("request/metrics");
          // Prometheus text exposition; in NDJSON mode it streams
          // verbatim (self-framed by its "# EOF" terminator), in binary
          // mode it travels inside one text frame.
          const std::string text =
              metrics::PrometheusText(metrics::Registry::Global());
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          if (binary) {
            AppendBinaryTextFrame(&reply, BinaryOp::kMetrics, text);
          } else {
            reply += text;
          }
          break;
        }
        case WireRequest::Op::kPing: {
          scope.set_op("request/ping");
          SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
          if (binary) {
            AppendBinaryPong(&reply);
          } else {
            AppendPong(&reply);
            reply += '\n';
          }
          break;
        }
      }
    }
    if (!reply.empty()) {
      if (!SendRaw(fd, reply)) goto done;
    }
    NoteReplyBufferUse(reply_capacity_before, reply);
    reply.clear();
  }
done:
  // Deregister before closing so Stop never shuts down a recycled fd.
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
}

}  // namespace serve
}  // namespace simgraph
