#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>

#include "serve/wire_protocol.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/net.h"
#include "util/prom_export.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {
namespace {

bool SendRaw(int fd, const std::string& payload) {
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SendAll(int fd, const std::string& line) {
  return SendRaw(fd, line + "\n");
}

}  // namespace

TcpServer::TcpServer(ServingBackend* service) : service_(service) {
  SIMGRAPH_CHECK(service != nullptr);
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  // Shared loopback listener (util/net.h): ephemeral-port readback for
  // port 0, EADDRINUSE retry for explicit ports on busy CI runners.
  StatusOr<int> fd = net::ListenLoopback(port, &port_);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // shutdown() breaks the blocking accept(); close() alone would not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener closed underneath us
    }
    SIMGRAPH_COUNTER_ADD("serve.tcp.connections", 1);
    std::lock_guard<std::mutex> lock(workers_mu_);
    open_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  std::string buffer;
  // An oversized request line is discarded as it streams in (the buffer
  // never grows past the cap) and answered with one structured error
  // once its terminating newline arrives — so the connection survives
  // and stays correctly framed no matter how the bytes were chunked.
  bool discarding_oversized = false;
  char chunk[4096];
  while (!stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (discarding_oversized) {
        // The tail of a line whose head was already thrown away.
        discarding_oversized = false;
        if (!SendAll(fd, FormatError("request line exceeds " +
                                     std::to_string(kMaxLineBytes) +
                                     " bytes"))) {
          goto done;
        }
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > kMaxLineBytes) {
        // The whole line arrived in one buffer before the cap check saw
        // it; reject it exactly like the streamed case.
        SIMGRAPH_COUNTER_ADD("serve.tcp.oversized_lines", 1);
        if (!SendAll(fd, FormatError("request line exceeds " +
                                     std::to_string(kMaxLineBytes) +
                                     " bytes"))) {
          goto done;
        }
        continue;
      }
      // One line is one request: the scope assigns the request id and
      // spans parse through serialize, so the exported trace renders the
      // whole request as one connected tree (docs/observability.md).
      trace::RequestScope scope("request/handle");
      StatusOr<WireRequest> parsed = [&] {
        SIMGRAPH_TRACE_SPAN("request/parse", "serve");
        return ParseRequestLine(line);
      }();
      std::string reply;
      // Raw replies (Prometheus text) are multi-line and self-framed.
      bool raw_reply = false;
      if (!parsed.ok()) {
        reply = FormatError(parsed.status().message());
      } else {
        const WireRequest& request = *parsed;
        switch (request.op) {
          case WireRequest::Op::kEvent: {
            scope.set_op("request/event");
            const uint64_t seq = service_->Publish(
                RetweetEvent{request.tweet, request.user, request.time});
            reply = seq > 0 ? FormatEventAck(seq)
                            : FormatError("service stopped");
            break;
          }
          case WireRequest::Op::kRecommend: {
            scope.set_op("request/recommend");
            scope.SetAttribute("user", request.user);
            const RecommendResponse response = service_->Recommend(
                RecommendRequest{request.user, request.now, request.k});
            if (!response.status.ok()) {
              reply = FormatError(response.status.message());
            } else {
              reply = FormatRecommendResponse(
                  request.user, scope.request_id(), response.tweets,
                  response.cache_hit, response.degraded,
                  response.applied_seq);
            }
            break;
          }
          case WireRequest::Op::kWaitApplied: {
            scope.set_op("request/wait_applied");
            service_->WaitForApplied(request.seq);
            reply = FormatWaitAppliedAck(service_->AppliedSeq());
            break;
          }
          case WireRequest::Op::kStats: {
            scope.set_op("request/stats");
            std::ostringstream metrics_json;
            metrics::Registry::Global().WriteJson(metrics_json,
                                                  /*pretty=*/false);
            reply = FormatStats(service_->Stats(), metrics_json.str());
            break;
          }
          case WireRequest::Op::kStatsWindow: {
            scope.set_op("request/stats_window");
            if (recorder_ == nullptr) {
              reply = FormatError(
                  "no timeseries recorder (start simgraph_served with "
                  "--stats-window-ms)");
            } else {
              reply = FormatStatsWindow(recorder_->RecentJson(request.limit));
            }
            break;
          }
          case WireRequest::Op::kSlowLog: {
            scope.set_op("request/slow_log");
            std::vector<SlowRequestEntry> entries;
            service_->CollectSlowRequests(request.limit, &entries);
            reply = FormatSlowLog(entries);
            break;
          }
          case WireRequest::Op::kMetrics: {
            scope.set_op("request/metrics");
            // Prometheus text exposition, streamed verbatim; the
            // "# EOF" terminator tells the client where it ends.
            reply = metrics::PrometheusText(metrics::Registry::Global());
            raw_reply = true;
            break;
          }
          case WireRequest::Op::kPing:
            scope.set_op("request/ping");
            reply = FormatPong();
            break;
        }
      }
      bool sent;
      {
        SIMGRAPH_TRACE_SPAN("request/serialize", "serve");
        sent = raw_reply ? SendRaw(fd, reply) : SendAll(fd, reply);
      }
      if (!sent) goto done;
    }
    if (!discarding_oversized && buffer.size() > kMaxLineBytes) {
      // The line under assembly already blew the cap: drop what is
      // buffered and keep eating bytes until its newline shows up.
      SIMGRAPH_COUNTER_ADD("serve.tcp.oversized_lines", 1);
      discarding_oversized = true;
      buffer.clear();
    } else if (discarding_oversized) {
      // Still inside the oversized line; nothing here is a request.
      buffer.clear();
    }
  }
done:
  // Deregister before closing so Stop never shuts down a recycled fd.
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
}

}  // namespace serve
}  // namespace simgraph
