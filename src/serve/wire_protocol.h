#ifndef SIMGRAPH_SERVE_WIRE_PROTOCOL_H_
#define SIMGRAPH_SERVE_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/recommender.h"
#include "dataset/types.h"
#include "serve/backend.h"
#include "util/status.h"

namespace simgraph {
namespace serve {

/// Newline-delimited JSON wire protocol of tools/simgraph_served: one
/// flat JSON object per line in, one per line out (docs/serving.md has
/// the full reference with examples).
///
/// Requests:
///   {"op":"event","tweet":42,"user":7,"time":100000}
///   {"op":"recommend","user":7,"now":100500,"k":10}
///   {"op":"wait_applied","seq":12}
///   {"op":"stats"}
///   {"op":"stats-window","n":16}
///   {"op":"slow-log","n":16}
///   {"op":"metrics"}
///   {"op":"ping"}
struct WireRequest {
  enum class Op {
    kRecommend,
    kEvent,
    kWaitApplied,
    kStats,
    kStatsWindow,
    kSlowLog,
    kMetrics,
    kPing
  };
  Op op = Op::kPing;
  // event
  TweetId tweet = 0;
  UserId user = 0;
  Timestamp time = 0;
  // recommend
  Timestamp now = 0;
  int32_t k = 10;
  // wait_applied
  uint64_t seq = 0;
  // stats-window / slow-log: max entries to return
  int32_t limit = 16;
};

/// Parses one request line. Strict about structure (must be a flat JSON
/// object with a known "op") but ignores unknown keys, so clients may
/// attach e.g. tracing ids.
StatusOr<WireRequest> ParseRequestLine(std::string_view line);

/// {"ok":true,"op":"event","seq":12}
std::string FormatEventAck(uint64_t seq);

/// {"ok":true,"op":"recommend","user":7,"request_id":9,"cache_hit":false,
///  "degraded":false,"applied_seq":12,
///  "tweets":[{"id":3,"score":0.5}, ...]}
/// `request_id` is the server-assigned trace id of this request (0 when
/// tracing infrastructure assigned none); clients correlate it with the
/// slow-request log and exported traces.
std::string FormatRecommendResponse(UserId user, uint64_t request_id,
                                    const std::vector<ScoredTweet>& tweets,
                                    bool cache_hit, bool degraded,
                                    uint64_t applied_seq);

/// {"ok":true,"op":"wait_applied","seq":12}
std::string FormatWaitAppliedAck(uint64_t seq);

/// {"ok":true,"op":"stats","applied_seq":12,"cached_entries":3,
///  "graph_epoch":1,"graph_edges":123,"num_shards":2,
///  "shards":[{"applied_seq":12,"cached_entries":1,...}, ...],
///  "metrics":{...}}
/// The top-level fields are the aggregates from `stats` (min applied
/// seq, summed cache entries); "shards" breaks them down per shard.
/// `metrics_json` must be a complete JSON value (the compact registry
/// snapshot from metrics::Registry::WriteJson(out, /*pretty=*/false));
/// when empty the "metrics" key is omitted.
std::string FormatStats(const BackendStats& stats,
                        const std::string& metrics_json = "");

/// {"ok":true,"op":"stats-window","windows":[{...}, ...]} — each array
/// element is one TimeseriesRecorder window record (the versioned
/// NDJSON object, docs/observability.md), embedded verbatim, oldest
/// first.
std::string FormatStatsWindow(const std::vector<std::string>& records);

/// {"ok":true,"op":"slow-log","entries":[{...}, ...]} — the flight
/// recorder's retained slowest requests, slowest first.
std::string FormatSlowLog(const std::vector<SlowRequestEntry>& entries);

/// Appends one slow-request entry as a JSON object:
/// {"request_id":9,"shard":0,"window":3,"user":7,"total_us":1234,
///  "cache_hit":false,"degraded":false,"stages":{"cache_lookup":2,...}}
/// Shared by FormatSlowLog and the automatic flight-recorder dump.
void AppendSlowRequestJson(std::string* out, const SlowRequestEntry& entry);

/// {"ok":true,"op":"ping"}
std::string FormatPong();

/// {"ok":false,"error":"..."} — `message` is JSON-escaped.
std::string FormatError(std::string_view message);

/// Append* twins of the Format* functions above: each appends the same
/// bytes to *out WITHOUT clearing it, so a per-connection reply buffer
/// (reserved once, reused every pass) accumulates a batch of responses
/// with no per-request string churn. The Format* functions are thin
/// wrappers over these.
void AppendEventAck(std::string* out, uint64_t seq);
void AppendRecommendResponse(std::string* out, UserId user,
                             uint64_t request_id,
                             const std::vector<ScoredTweet>& tweets,
                             bool cache_hit, bool degraded,
                             uint64_t applied_seq);
void AppendWaitAppliedAck(std::string* out, uint64_t seq);
void AppendStats(std::string* out, const BackendStats& stats,
                 const std::string& metrics_json = "");
void AppendStatsWindow(std::string* out,
                       const std::vector<std::string>& records);
void AppendSlowLog(std::string* out,
                   const std::vector<SlowRequestEntry>& entries);
void AppendPong(std::string* out);
void AppendError(std::string* out, std::string_view message);

/// Buffer-reuse accounting for the per-connection encode/decode buffers:
/// call with the buffer's capacity before an encode pass and the buffer
/// after it. Counts serve.wire.buffer.reuses when the pass fit in
/// storage the buffer already owned (allocations a fresh string per
/// response would have paid) and serve.wire.buffer.grows when the pass
/// had to (re)allocate.
void NoteReplyBufferUse(size_t capacity_before, const std::string& after);

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_WIRE_PROTOCOL_H_
