#ifndef SIMGRAPH_SERVE_REPLICATION_CLIENT_H_
#define SIMGRAPH_SERVE_REPLICATION_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "serve/replication_wire.h"
#include "serve/service.h"
#include "util/status.h"

namespace simgraph {
namespace serve {

struct ReplicationClientOptions {
  /// Builder's replication port on 127.0.0.1.
  uint16_t port = 0;
  /// Replica name carried in HELLO (logs and metrics on the builder).
  std::string name = "replica";
  /// Request the builder's SGCS bootstrap image at handshake; the bytes
  /// are written to snapshot_save_path so store::GraphImage::Load can
  /// validate and mmap them like any local image.
  bool want_snapshot = false;
  std::string snapshot_save_path;
  /// ECONNREFUSED retry budget (a builder mid-startup).
  int64_t connect_timeout_ms = 10000;
  /// Receive deadline covering the handshake reads (HELLO_ACK and the
  /// optional SNAPSHOT): a peer that accepts the connection but never
  /// answers fails Connect instead of blocking the replica forever —
  /// mirroring the fanout's handshake_timeout_ms. Cleared before the
  /// pump threads take over (deltas may legitimately pause for long).
  /// 0 disables.
  int64_t handshake_timeout_ms = 30000;
};

/// What the handshake learned; feeds replica construction (graph stats)
/// before any delta arrives.
struct ReplicationBootstrap {
  uint64_t built_seq = 0;
  uint64_t graph_epoch = 0;
  int64_t graph_edges = 0;
  bool snapshot_received = false;
  int64_t snapshot_bytes = 0;
};

/// Replica-side SGRP session (docs/replication.md). Two-phase on
/// purpose: Connect performs the handshake — including the optional
/// snapshot bootstrap, whose image the caller needs BEFORE it can build
/// and train its DeltaApplierRecommender — and only then does Start
/// attach the live RecommendationService and begin pumping deltas.
///
/// Start runs two threads:
///   * the pump reads DELTA frames, parses each SGDL payload, and
///     enqueues it on the service via PublishItem with the builder's
///     sequence number — exactly the path an in-process shard queue
///     feeds, so replay is bit-identical by construction;
///   * the acker follows the service's applied watermark with
///     WaitForApplied and reports each advance back as an ACK frame,
///     which is what feeds the builder's lag accounting.
class ReplicationClient {
 public:
  explicit ReplicationClient(ReplicationClientOptions options = {});
  ~ReplicationClient();

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Connects and handshakes. `applied_seq` is the replica's resume
  /// position (0 for a cold start); the builder replays every retained
  /// delta past it.
  Status Connect(uint64_t applied_seq, ReplicationBootstrap* bootstrap);

  /// Starts the pump and ack threads against a trained, started
  /// service. Call exactly once, after Connect succeeded. Stop this
  /// client BEFORE stopping the service.
  void Start(RecommendationService* service);

  void Stop();

  /// True once the builder said BYE, closed the connection, or sent an
  /// ERROR frame.
  bool finished() const { return finished_.load(); }
  /// Last error the session ended with (Ok for a clean BYE/EOF).
  Status session_status() const;
  /// Blocks until the session ends (builder gone) or Stop.
  void WaitUntilClosed();

  /// Highest delta seq_end handed to the service so far.
  uint64_t enqueued_seq() const { return enqueued_seq_.load(); }

 private:
  void PumpLoop();
  void AckLoop();
  void Finish(Status status);

  ReplicationClientOptions options_;
  int fd_ = -1;
  RecommendationService* service_ = nullptr;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::atomic<uint64_t> enqueued_seq_{0};
  uint64_t acked_seq_ = 0;  // ack thread only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Status session_status_ = Status::Ok();

  std::thread pump_;
  std::thread acker_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_REPLICATION_CLIENT_H_
