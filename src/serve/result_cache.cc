#include "serve/result_cache.h"

#include <algorithm>
#include <mutex>

#include "util/logging.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {

ResultCache::ResultCache(int32_t num_users, Timestamp ttl,
                         int32_t num_stripes)
    : ttl_(ttl), entries_(static_cast<size_t>(num_users)) {
  SIMGRAPH_CHECK_GE(ttl, 0);
  SIMGRAPH_CHECK_GT(num_stripes, 0);
  const size_t stripes = std::min<size_t>(
      static_cast<size_t>(num_stripes),
      std::max<size_t>(1, entries_.size()));
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

ResultCache::Lookup ResultCache::Get(UserId user, Timestamp now, int32_t k) {
  SIMGRAPH_TRACE_SPAN("request/cache_lookup", "serve");
  std::shared_lock<std::shared_mutex> lock(stripe_of(user).mu);
  const Entry& entry = entries_[static_cast<size_t>(user)];
  Lookup result;
  result.version = entry.version;
  if (!entry.valid) return result;
  if (now < entry.computed_at || now - entry.computed_at > ttl_) {
    return result;
  }
  const bool complete =
      static_cast<int64_t>(entry.tweets.size()) < entry.k;
  if (k > entry.k && !complete) return result;
  result.hit = true;
  const size_t take =
      std::min(entry.tweets.size(), static_cast<size_t>(k));
  result.tweets.assign(entry.tweets.begin(),
                       entry.tweets.begin() + static_cast<int64_t>(take));
  return result;
}

bool ResultCache::Put(UserId user, Timestamp computed_at, int32_t k,
                      std::vector<ScoredTweet> tweets, uint64_t version) {
  std::unique_lock<std::shared_mutex> lock(stripe_of(user).mu);
  Entry& entry = entries_[static_cast<size_t>(user)];
  if (entry.version != version) return false;
  entry.valid = true;
  entry.computed_at = computed_at;
  entry.k = k;
  entry.tweets = std::move(tweets);
  return true;
}

bool ResultCache::Invalidate(UserId user) {
  std::unique_lock<std::shared_mutex> lock(stripe_of(user).mu);
  Entry& entry = entries_[static_cast<size_t>(user)];
  ++entry.version;
  const bool dropped = entry.valid;
  entry.valid = false;
  entry.tweets.clear();
  entry.tweets.shrink_to_fit();
  return dropped;
}

int64_t ResultCache::InvalidateAll() {
  int64_t dropped = 0;
  for (size_t u = 0; u < entries_.size(); ++u) {
    if (Invalidate(static_cast<UserId>(u))) ++dropped;
  }
  return dropped;
}

uint64_t ResultCache::Version(UserId user) const {
  std::shared_lock<std::shared_mutex> lock(stripe_of(user).mu);
  return entries_[static_cast<size_t>(user)].version;
}

int64_t ResultCache::size() const {
  int64_t count = 0;
  for (size_t u = 0; u < entries_.size(); ++u) {
    std::shared_lock<std::shared_mutex> lock(
        stripe_of(static_cast<UserId>(u)).mu);
    if (entries_[u].valid) ++count;
  }
  return count;
}

}  // namespace serve
}  // namespace simgraph
