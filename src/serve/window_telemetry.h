#ifndef SIMGRAPH_SERVE_WINDOW_TELEMETRY_H_
#define SIMGRAPH_SERVE_WINDOW_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "serve/backend.h"
#include "util/timeseries.h"

namespace simgraph {
namespace serve {

struct WindowTelemetryOptions {
  /// A window whose request p99 exceeds `p99_spike_multiplier` times the
  /// trailing median of recent windows triggers an automatic flight-
  /// recorder dump (one structured log line) and bumps
  /// serve.window.p99_spikes. <= 0 disables spike detection.
  double p99_spike_multiplier = 4.0;
  /// How many recent window p99s form the trailing median baseline.
  int32_t trailing_windows = 8;
  /// Windows with fewer requests than this neither trigger spikes nor
  /// enter the baseline (sparse windows have garbage percentiles).
  int64_t min_requests = 64;
  /// Baseline windows required before spike detection arms.
  int32_t min_baseline_windows = 3;
  /// Max flight-recorder entries per automatic dump.
  int32_t dump_max = 16;
};

/// Glue between a timeseries::TimeseriesRecorder and a ServingBackend —
/// the serving side of "Windowed telemetry & flight recorder"
/// (docs/observability.md).
///
///   * OnRotate (the recorder's on_rotate hook) closes the backend's
///     per-shard windows and publishes the serve.window.* gauge family,
///     aggregated and per shard, so the gauges land in the very record
///     the recorder is about to build.
///   * OnRecord (the recorder's on_record hook) reads the finished
///     record's per-window request p99 and runs the spike rule: p99 >
///     multiplier x trailing median ==> dump the flight recorder's
///     slowest requests as one JSON log line and count the spike.
///
/// Both hooks run on the recorder thread; construct one publisher per
/// recorder.
class WindowTelemetryPublisher {
 public:
  explicit WindowTelemetryPublisher(ServingBackend* backend,
                                    WindowTelemetryOptions options = {});

  /// Recorder Options pre-wired to this publisher (interval, sinks and
  /// hooks); the caller may still override fields before constructing
  /// the recorder. The publisher must outlive the recorder.
  timeseries::TimeseriesRecorder::Options RecorderOptions(
      int64_t interval_ms, const std::string& ndjson_path = "");

  void OnRotate(int64_t window, double dt_s);
  void OnRecord(const timeseries::TimeseriesRecorder::Record& record);

  /// Spike count so far (also exported as serve.window.p99_spikes).
  int64_t p99_spikes() const { return p99_spikes_; }

 private:
  ServingBackend* backend_;
  WindowTelemetryOptions options_;
  /// Trailing per-window request p99s (microseconds) of qualifying
  /// windows, newest last.
  std::deque<double> trailing_p99_us_;
  int64_t p99_spikes_ = 0;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_WINDOW_TELEMETRY_H_
