#ifndef SIMGRAPH_SERVE_SHARD_ROUTER_H_
#define SIMGRAPH_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "dataset/types.h"

namespace simgraph {
namespace serve {

/// Hash-based request router of the sharded serving path: maps every
/// user id to its home shard with a stable mixing hash, so the
/// assignment is uniform even when user ids are dense and sequential
/// (plain `user % shards` would put consecutive users on consecutive
/// shards, which correlates with community structure in the generator).
///
/// Recommend requests go to exactly ShardOf(user). Events fan out to
/// ShardsForEvent(event): per-shard graph state is *replicated* (a
/// similarity deposit can touch users on any shard), so today that is
/// every shard — the method exists as the seam where a recommender with
/// provably confined event effects could narrow the fan-out. See
/// docs/serving.md for the consistency discussion.
class ShardRouter {
 public:
  /// `num_shards` below 1 is clamped to 1.
  explicit ShardRouter(int32_t num_shards);

  int32_t num_shards() const { return num_shards_; }

  /// Home shard of `user` (stable across processes and runs).
  int32_t ShardOf(UserId user) const;

  /// Shards that must apply `event`, each exactly once, in ascending
  /// order. Currently all shards (replicated graph state).
  std::vector<int32_t> ShardsForEvent(const RetweetEvent& event) const;

 private:
  int32_t num_shards_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_SHARD_ROUTER_H_
