#include "serve/delta_builder.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {
namespace serve {

DeltaBuilder::DeltaBuilder(SimGraphServingRecommender* source,
                           std::vector<RecommendationService*> shards,
                           DeltaBuilderOptions options)
    : source_(source),
      shards_(std::move(shards)),
      options_(options),
      queue_(options.queue_capacity) {
  SIMGRAPH_CHECK(!shards_.empty());
  if (options_.max_batch_events < 1) options_.max_batch_events = 1;
}

DeltaBuilder::~DeltaBuilder() { Stop(); }

void DeltaBuilder::Start() {
  if (started_.exchange(true)) return;
  builder_ = std::thread([this] { BuildLoop(); });
}

void DeltaBuilder::Stop() {
  if (stopped_.exchange(true)) return;
  queue_.Close();
  if (builder_.joinable()) builder_.join();
}

uint64_t DeltaBuilder::Publish(const RetweetEvent& event) {
  SIMGRAPH_CHECK(started_.load()) << "Start must be called before Publish";
  IngestItem item;
  item.event = event;
  if (trace::RequestScope* scope = trace::CurrentScope();
      scope != nullptr && scope->collecting()) {
    item.request_id = scope->request_id();
    item.traced = scope->recording();
    item.enqueue_us = trace::NowMicros();
  }
  const auto ticket = queue_.Push(std::move(item));
  if (!ticket.has_value()) return 0;  // stopped; event rejected
  const auto depth = static_cast<int64_t>(queue_.size());
  SIMGRAPH_GAUGE_SET("serve.ingest.queue_depth", static_cast<double>(depth));
  int64_t max = queue_depth_max_.load(std::memory_order_relaxed);
  while (depth > max && !queue_depth_max_.compare_exchange_weak(
                            max, depth, std::memory_order_relaxed)) {
  }
  SIMGRAPH_GAUGE_SET(
      "serve.ingest.queue_depth_max",
      static_cast<double>(queue_depth_max_.load(std::memory_order_relaxed)));
  return *ticket + 1;  // tickets are 0-based, sequence numbers 1-based
}

void DeltaBuilder::CrashForTest() {
  crash_requested_.store(true, std::memory_order_release);
}

void DeltaBuilder::Recover() {
  // The crashed loop exited; join it so consumed_seq_/pending_ are
  // visible to the restarted thread, then resume from the exact queue
  // position — no event is lost or double-built.
  if (builder_.joinable()) builder_.join();
  crash_requested_.store(false, std::memory_order_release);
  builder_ = std::thread([this] { BuildLoop(); });
}

void DeltaBuilder::RecordQueueWait(const IngestItem& item) {
  if (item.request_id != 0 && item.traced && item.enqueue_us > 0) {
    const int64_t now_us = trace::NowMicros();
    trace::RecordRequestSpan("request/pipeline_wait", "serve",
                             item.enqueue_us, now_us - item.enqueue_us,
                             item.request_id);
  }
}

void DeltaBuilder::BuildLoop() {
  while (true) {
    if (crash_requested_.load(std::memory_order_acquire)) return;
    IngestItem item;
    if (pending_.has_value()) {
      item = std::move(*pending_);
      pending_.reset();
    } else {
      std::optional<IngestItem> popped = queue_.Pop();
      if (!popped.has_value()) break;  // closed and drained
      popped->seq = ++consumed_seq_;
      item = std::move(*popped);
    }
    if (crash_requested_.load(std::memory_order_acquire)) {
      // Simulated crash with one event in hand: park it for Recover so
      // the restart resumes exactly here.
      pending_ = std::move(item);
      return;
    }
    RecordQueueWait(item);
    const bool shipped =
        delta_mode() ? BuildAndShip(std::move(item)) : Forward(std::move(item));
    if (!shipped) return;  // a shard stopped; nothing more can land
  }
}

bool DeltaBuilder::BuildAndShip(IngestItem first) {
  const bool metrics_on = metrics::Enabled();
  WallTimer build_timer;
  scratch_.Clear();
  scratch_.seq_begin = first.seq;
  uint64_t seq_end = first.seq;
  uint64_t request_id = first.request_id;
  bool traced = first.traced;
  {
    // Adopt the publishing request on this thread so the build span
    // joins its trace tree (batched followers fold into the same span).
    std::optional<trace::RequestScope> scope;
    if (first.request_id != 0) {
      scope.emplace("request/build_delta", first.request_id, first.traced);
    }
    source_->ObserveRecordingDelta(first.event, &scratch_);
    // Opportunistic batching: drain whatever already queued up (bounded)
    // into the same delta, so a backlog amortises the fan-out cost.
    int64_t batched = 1;
    while (batched < options_.max_batch_events) {
      std::optional<IngestItem> next = queue_.TryPop();
      if (!next.has_value()) break;
      next->seq = ++consumed_seq_;
      RecordQueueWait(*next);
      source_->ObserveRecordingDelta(next->event, &scratch_);
      seq_end = next->seq;
      if (next->request_id != 0) {
        request_id = next->request_id;
        traced = next->traced;
      }
      ++batched;
    }
  }
  scratch_.seq_end = seq_end;
  std::sort(scratch_.invalidated.begin(), scratch_.invalidated.end());
  scratch_.invalidated.erase(
      std::unique(scratch_.invalidated.begin(), scratch_.invalidated.end()),
      scratch_.invalidated.end());

  if (metrics_on) {
    SIMGRAPH_HISTOGRAM_RECORD("serve.ingest.delta.build_us",
                              build_timer.ElapsedSeconds() * 1e6);
    SIMGRAPH_HISTOGRAM_RECORD("serve.ingest.delta.batch_events",
                              static_cast<double>(scratch_.num_events()));
    SIMGRAPH_HISTOGRAM_RECORD("serve.ingest.delta.bytes",
                              static_cast<double>(scratch_.ByteSize()));
    SIMGRAPH_HISTOGRAM_RECORD("serve.ingest.delta.edges",
                              static_cast<double>(scratch_.num_edge_ops()));
    SIMGRAPH_HISTOGRAM_RECORD("serve.ingest.delta.deposits",
                              static_cast<double>(scratch_.deposits.size()));
    SIMGRAPH_GAUGE_SET("serve.ingest.delta.built_seq",
                       static_cast<double>(seq_end));
  }
  if (options_.delta_observer) options_.delta_observer(scratch_);
  built_seq_.store(seq_end, std::memory_order_relaxed);

  WallTimer fanout_timer;
  IngestItem out;
  out.delta = std::make_shared<const SimGraphDelta>(scratch_);
  out.seq = seq_end;
  out.request_id = request_id;
  out.traced = traced;
  out.enqueue_us = request_id != 0 ? trace::NowMicros() : 0;
  for (RecommendationService* shard : shards_) {
    if (shard->PublishItem(out) == 0) return false;  // shard stopped
  }
  if (metrics_on) {
    SIMGRAPH_HISTOGRAM_RECORD("serve.ingest.delta.fanout_us",
                              fanout_timer.ElapsedSeconds() * 1e6);
  }
  return true;
}

bool DeltaBuilder::Forward(IngestItem item) {
  // Replicated mode: every shard re-runs the incremental update itself.
  // Restart the queue-wait clock so each shard attributes only its own
  // local queueing.
  item.enqueue_us = item.request_id != 0 ? trace::NowMicros() : 0;
  built_seq_.store(item.seq, std::memory_order_relaxed);
  for (RecommendationService* shard : shards_) {
    if (shard->PublishItem(item) == 0) return false;  // shard stopped
  }
  return true;
}

}  // namespace serve
}  // namespace simgraph
