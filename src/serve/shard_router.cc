#include "serve/shard_router.h"

#include <numeric>

namespace simgraph {
namespace serve {
namespace {

/// splitmix64 finalizer: full-avalanche mix so dense sequential user
/// ids spread uniformly over shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(int32_t num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards) {}

int32_t ShardRouter::ShardOf(UserId user) const {
  if (num_shards_ == 1) return 0;
  return static_cast<int32_t>(Mix64(static_cast<uint64_t>(user)) %
                              static_cast<uint64_t>(num_shards_));
}

std::vector<int32_t> ShardRouter::ShardsForEvent(
    const RetweetEvent& event) const {
  (void)event;  // replicated graph state: every event reaches every shard
  std::vector<int32_t> shards(static_cast<size_t>(num_shards_));
  std::iota(shards.begin(), shards.end(), 0);
  return shards;
}

}  // namespace serve
}  // namespace simgraph
