#ifndef SIMGRAPH_SERVE_SIMGRAPH_SERVING_RECOMMENDER_H_
#define SIMGRAPH_SERVE_SIMGRAPH_SERVING_RECOMMENDER_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/candidate_store.h"
#include "core/incremental.h"
#include "core/propagation.h"
#include "core/simgraph.h"
#include "serve/serving_recommender.h"
#include "util/metrics.h"

namespace simgraph {
namespace serve {

/// Configuration of the serving-grade SimGraph recommender.
struct ServingSimGraphOptions {
  SimGraphOptions graph;
  PropagationOptions propagation;
  /// Posts older than this are never recommended (72 h per the paper).
  Timestamp freshness_window = 72 * kSecondsPerHour;
  /// Propagated scores below this floor are not deposited.
  double min_deposit_score = 0.0;
  /// Re-materialise the CSR propagation snapshot from the incremental
  /// graph every this many applied events (epoch swap). 0 keeps the
  /// training-time graph forever — which makes the serving recommender
  /// bit-identical to an offline SimGraphRecommender over the same
  /// stream (tests/serve/serving_recommender_test.cc relies on this).
  int64_t snapshot_refresh_events = 0;
  /// Number of lock stripes over users for candidate/consumed state.
  int32_t num_stripes = 64;
  /// Evict stale candidates every this many observed events (mirrors
  /// SimGraphRecommender's fixed 50000 cadence).
  int64_t evict_every = 50000;
};

/// The SimGraph recommender restructured for online serving: the
/// similarity graph lives in an IncrementalSimGraph that absorbs every
/// streamed event, while propagation runs over an immutable CSR snapshot
/// that is swapped atomically every `snapshot_refresh_events` events —
/// so reads never block on graph maintenance.
///
/// Threading model (enforced by RecommendationService):
///   * ObserveAffected is called from exactly one ingest thread;
///   * Recommend / RecommendUntil may run concurrently from any number
///     of reader threads (concurrent_reads() is true).
/// Candidate and consumed state is guarded by locks striped over users,
/// so the ingest thread writing user u's candidates only blocks readers
/// whose query user shares u's stripe.
class SimGraphServingRecommender final : public ServingRecommender {
 public:
  explicit SimGraphServingRecommender(ServingSimGraphOptions options = {});

  std::string name() const override { return "SimGraphServing"; }
  Status Train(const Dataset& dataset, int64_t train_end) override;
  AffectedUsers ObserveAffected(const RetweetEvent& event) override;
  /// Caches the shard-qualified serve.apply.propagation_us histogram so
  /// the ingest loop records per-shard propagation latency without a
  /// registry lookup per event.
  void BindShard(int32_t shard) override;
  std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                     int32_t k) override;
  RecommendOutcome RecommendUntil(
      UserId user, Timestamp now, int32_t k,
      std::chrono::steady_clock::time_point deadline) override;
  bool concurrent_reads() const override { return true; }

  /// The CSR snapshot propagation currently runs over. The returned
  /// shared_ptr keeps the snapshot alive across epoch swaps.
  std::shared_ptr<const SimGraph> GraphSnapshot() const;

  /// Bumped on every snapshot swap (1 after Train).
  uint64_t graph_epoch() const;

  /// The live incremental graph (single-threaded access only: call while
  /// the ingest thread is quiescent).
  const IncrementalSimGraph& incremental() const { return *incremental_; }

  int64_t num_propagations() const { return num_propagations_; }

 private:
  struct TweetState {
    std::vector<UserId> seeds;
  };

  /// Materialises incremental_ into a fresh snapshot + propagator and
  /// publishes them (epoch swap). Ingest-thread only.
  void RefreshSnapshot();

  std::shared_mutex& StripeOf(UserId user) const {
    return *stripes_[static_cast<size_t>(user) % stripes_.size()];
  }

  ServingSimGraphOptions options_;
  std::unique_ptr<IncrementalSimGraph> incremental_;
  std::unique_ptr<CandidateStore> candidates_;
  std::unordered_map<TweetId, TweetState> tweet_state_;  // ingest-only
  std::vector<UserId> tweet_author_;  // immutable after Train
  int32_t num_users_ = 0;
  int64_t observed_ = 0;          // ingest-only
  int64_t num_propagations_ = 0;  // ingest-only
  // Reused by the single ingest thread across ObserveAffected calls so
  // steady-state propagation allocates nothing (survives snapshot swaps:
  // the scratch is propagator-independent).
  PropagationScratch propagation_scratch_;  // ingest-only
  PropagationResult propagation_result_;    // ingest-only
  // Shard-qualified propagation-latency histogram, cached by BindShard;
  // null outside sharded deployments.
  metrics::LatencyHistogram* shard_propagation_us_ = nullptr;

  /// Guards snapshot_ / propagator_ / graph_epoch_ publication; the
  /// ingest thread holds it only for the pointer swap, never during the
  /// (expensive) snapshot build.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const SimGraph> snapshot_;
  std::unique_ptr<Propagator> propagator_;  // over *snapshot_; ingest-only use
  uint64_t graph_epoch_ = 0;

  /// Striped user locks: exclusive for ingest writes to a user's
  /// candidate/consumed state, shared for reads.
  std::vector<std::unique_ptr<std::shared_mutex>> stripes_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_SIMGRAPH_SERVING_RECOMMENDER_H_
