#ifndef SIMGRAPH_SERVE_SIMGRAPH_SERVING_RECOMMENDER_H_
#define SIMGRAPH_SERVE_SIMGRAPH_SERVING_RECOMMENDER_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/incremental.h"
#include "core/propagation.h"
#include "core/simgraph.h"
#include "core/simgraph_delta.h"
#include "serve/candidate_state.h"
#include "serve/serving_recommender.h"
#include "store/graph_image.h"
#include "util/metrics.h"

namespace simgraph {
namespace serve {

/// Configuration of the serving-grade SimGraph recommender.
struct ServingSimGraphOptions {
  SimGraphOptions graph;
  PropagationOptions propagation;
  /// Posts older than this are never recommended (72 h per the paper).
  Timestamp freshness_window = 72 * kSecondsPerHour;
  /// Propagated scores below this floor are not deposited.
  double min_deposit_score = 0.0;
  /// Re-materialise the CSR propagation snapshot from the incremental
  /// graph every this many applied events (epoch swap). 0 keeps the
  /// training-time graph forever — which makes the serving recommender
  /// bit-identical to an offline SimGraphRecommender over the same
  /// stream (tests/serve/serving_recommender_test.cc relies on this).
  int64_t snapshot_refresh_events = 0;
  /// Number of lock stripes over users for candidate/consumed state.
  int32_t num_stripes = 64;
  /// Evict stale candidates every this many observed events (mirrors
  /// SimGraphRecommender's fixed 50000 cadence).
  int64_t evict_every = 50000;
  /// When set, Train takes the follow graph from this pinned mmap'd
  /// SGCS image instead of dataset.follow_graph (which may then be
  /// empty — the million-user deployments never materialise graph.txt).
  /// All shards of a ShardedService share the SAME image; see
  /// docs/store.md.
  std::shared_ptr<const store::GraphImage> graph_image;
};

/// The SimGraph recommender restructured for online serving: the
/// similarity graph lives in an IncrementalSimGraph that absorbs every
/// streamed event, while propagation runs over an immutable CSR snapshot
/// that is swapped atomically every `snapshot_refresh_events` events —
/// so reads never block on graph maintenance.
///
/// Under the delta-shipping pipeline (docs/ingest.md) exactly one of
/// these is the DeltaBuilder's source of truth: ObserveRecordingDelta
/// runs the update once and records everything downstream
/// DeltaApplierRecommender shards need to follow along.
///
/// Threading model (enforced by RecommendationService / DeltaBuilder):
///   * ObserveAffected / ObserveRecordingDelta run on exactly one ingest
///     thread;
///   * Recommend / RecommendUntil may run concurrently from any number
///     of reader threads (concurrent_reads() is true).
/// Candidate and consumed state is guarded by locks striped over users
/// (see CandidateState).
class SimGraphServingRecommender final : public ServingRecommender {
 public:
  explicit SimGraphServingRecommender(ServingSimGraphOptions options = {});

  std::string name() const override { return "SimGraphServing"; }
  Status Train(const Dataset& dataset, int64_t train_end) override;
  AffectedUsers ObserveAffected(const RetweetEvent& event) override;

  /// ObserveAffected, additionally recording every side effect of the
  /// event into `delta` (appending to its op vectors; the caller owns
  /// batching and seq stamping): graph edge ops, consumed marks, changed
  /// deposits, the eviction watermark, snapshot-refresh epoch swaps, and
  /// the affected users (appended to delta->invalidated unsorted — the
  /// builder finalises). `delta` may be null.
  AffectedUsers ObserveRecordingDelta(const RetweetEvent& event,
                                      SimGraphDelta* delta);

  /// Caches the shard-qualified serve.apply.propagation_us histogram so
  /// the ingest loop records per-shard propagation latency without a
  /// registry lookup per event.
  void BindShard(int32_t shard) override;
  std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                     int32_t k) override;
  RecommendOutcome RecommendUntil(
      UserId user, Timestamp now, int32_t k,
      std::chrono::steady_clock::time_point deadline) override;
  bool concurrent_reads() const override { return true; }
  bool GraphStats(uint64_t* epoch, int64_t* edges) const override;

  /// The CSR snapshot propagation currently runs over. The returned
  /// shared_ptr keeps the snapshot alive across epoch swaps.
  std::shared_ptr<const SimGraph> GraphSnapshot() const;

  /// Bumped on every snapshot swap (1 after Train).
  uint64_t graph_epoch() const;

  /// The live incremental graph (single-threaded access only: call while
  /// the ingest thread is quiescent).
  const IncrementalSimGraph& incremental() const { return *incremental_; }

  int64_t num_propagations() const { return num_propagations_; }

 private:
  struct TweetState {
    std::vector<UserId> seeds;
  };

  /// Materialises incremental_ into a fresh snapshot + propagator and
  /// publishes them (epoch swap). Ingest-thread only.
  void RefreshSnapshot();

  ServingSimGraphOptions options_;
  std::unique_ptr<IncrementalSimGraph> incremental_;
  /// Striped candidate/consumed state shared (by construction, not by
  /// reference) with DeltaApplierRecommender replicas.
  CandidateState state_;
  std::unordered_map<TweetId, TweetState> tweet_state_;  // ingest-only
  std::vector<UserId> tweet_author_;  // immutable after Train
  int32_t num_users_ = 0;
  int64_t observed_ = 0;          // ingest-only
  int64_t num_propagations_ = 0;  // ingest-only
  // Reused by the single ingest thread across ObserveAffected calls so
  // steady-state propagation allocates nothing (survives snapshot swaps:
  // the scratch is propagator-independent).
  PropagationScratch propagation_scratch_;  // ingest-only
  PropagationResult propagation_result_;    // ingest-only
  // Shard-qualified propagation-latency histogram, cached by BindShard;
  // null outside sharded deployments.
  metrics::LatencyHistogram* shard_propagation_us_ = nullptr;

  /// Guards snapshot_ / propagator_ / graph_epoch_ publication; the
  /// ingest thread holds it only for the pointer swap, never during the
  /// (expensive) snapshot build.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const SimGraph> snapshot_;
  std::unique_ptr<Propagator> propagator_;  // over *snapshot_; ingest-only use
  uint64_t graph_epoch_ = 0;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_SIMGRAPH_SERVING_RECOMMENDER_H_
