#ifndef SIMGRAPH_SERVE_SHARDED_SERVICE_H_
#define SIMGRAPH_SERVE_SHARDED_SERVICE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "dataset/dataset.h"
#include "serve/backend.h"
#include "serve/service.h"
#include "serve/shard_router.h"
#include "util/status.h"

namespace simgraph {
namespace serve {

struct ShardedServiceOptions {
  /// Number of shards (clamped to >= 1). One per core is the intended
  /// deployment; 1 degenerates to a routed single RecommendationService.
  int32_t num_shards = 1;
  /// Options applied to every shard's RecommendationService; the `shard`
  /// field is overwritten per shard (it labels per-shard metrics).
  ServiceOptions shard_options;
};

/// The recommendation service partitioned into per-core shards behind a
/// hash router. Each shard is a full RecommendationService — its own
/// ingestion queue, applier thread, result cache, recommender (and, for
/// SimGraph, IncrementalSimGraph + snapshot epoch) — so shards share no
/// mutable state and never contend on locks.
///
///   * Recommend(request) routes to the single shard owning the user
///     (router_.ShardOf), where it runs exactly as on an unsharded
///     service.
///   * Publish(event) fans the event out to every shard named by
///     router_.ShardsForEvent — all of them today, because similarity
///     deposits can affect users on any shard, so per-shard graph state
///     is replicated. The fan-out runs under one publish mutex, which
///     keeps every shard's local ticket sequence in lockstep: the global
///     sequence number IS each shard's local sequence number, and
///     read-your-acked-writes holds per shard exactly as it does
///     unsharded (tests/serve/sharded_service_test.cc proves it against
///     a single-threaded prefix recompute).
///   * WaitForApplied(seq) waits on every shard, so after it returns any
///     user's answer — whichever shard owns them — reflects the full
///     acked prefix. AppliedSeq() is correspondingly the minimum across
///     shards.
///   * Stats() aggregates the per-shard registries into one
///     BackendStats (sum of cache entries, min applied seq, per-shard
///     breakdown for the wire's `stats` reply).
///
/// Do not Publish directly to an individual shard() of a live
/// ShardedService: it would desynchronise the lockstep sequence
/// numbers. The accessor exists for tests and read-only inspection.
///
/// See docs/serving.md ("Sharded serving") for the full design and the
/// consistency caveats.
class ShardedService : public ServingBackend {
 public:
  using RecommenderFactory =
      std::function<std::unique_ptr<ServingRecommender>()>;

  /// Calls `factory` once per shard to build the per-shard recommender
  /// replicas.
  explicit ShardedService(const RecommenderFactory& factory,
                          ShardedServiceOptions options = {});
  ~ShardedService() override;

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Trains every shard (in parallel, one thread per shard). Call before
  /// Start.
  Status Train(const Dataset& dataset, int64_t train_end);

  /// Starts every shard's applier thread. Idempotent.
  void Start();

  /// Stops every shard (drains queues, joins appliers). Idempotent;
  /// also called by the destructor.
  void Stop();

  uint64_t Publish(const RetweetEvent& event) override;
  uint64_t AppliedSeq() const override;
  void WaitForApplied(uint64_t seq) override;
  RecommendResponse Recommend(const RecommendRequest& request) override;
  BackendStats Stats() const override;

  const ShardRouter& router() const { return router_; }
  int32_t num_shards() const { return router_.num_shards(); }
  int32_t ShardOf(UserId user) const { return router_.ShardOf(user); }

  /// Direct access to one shard (tests / inspection; see the class
  /// comment about Publish).
  RecommendationService& shard(int32_t i) {
    return *shards_[static_cast<size_t>(i)];
  }
  const RecommendationService& shard(int32_t i) const {
    return *shards_[static_cast<size_t>(i)];
  }

 private:
  ShardedServiceOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<RecommendationService>> shards_;
  /// Serialises event fan-out so every shard sees the same event order
  /// and assigns the same local sequence number (see class comment).
  std::mutex publish_mu_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_SHARDED_SERVICE_H_
