#ifndef SIMGRAPH_SERVE_SHARDED_SERVICE_H_
#define SIMGRAPH_SERVE_SHARDED_SERVICE_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/simgraph_delta.h"
#include "dataset/dataset.h"
#include "serve/backend.h"
#include "serve/delta_applier.h"
#include "serve/delta_builder.h"
#include "serve/replication_fanout.h"
#include "serve/service.h"
#include "serve/shard_router.h"
#include "serve/simgraph_serving_recommender.h"
#include "util/status.h"

namespace simgraph {
namespace serve {

struct ShardedServiceOptions {
  /// Number of shards (clamped to >= 1). One per core is the intended
  /// deployment; 1 degenerates to a routed single RecommendationService.
  int32_t num_shards = 1;
  /// Options applied to every shard's RecommendationService; the `shard`
  /// field is overwritten per shard (it labels per-shard metrics).
  ServiceOptions shard_options;
  /// Capacity of the pipeline's global ingestion queue (Publish blocks
  /// when full — backpressure, exactly as on an unsharded service).
  int64_t ingest_queue_capacity = 4096;
  /// Upper bound of events the DeltaBuilder folds into one delta when a
  /// backlog forms (see DeltaBuilderOptions::max_batch_events).
  int64_t max_batch_events = 16;
  /// Optional tap called on the builder thread with every finalised
  /// delta before fan-out (tests, wire-format replication).
  std::function<void(const SimGraphDelta&)> delta_observer;
  /// Optional multi-process replication (docs/replication.md): when
  /// set, every finalised delta is also shipped to the fanout's remote
  /// replicas (after delta_observer), remote acks fold into
  /// AppliedSeq/WaitForApplied, and Stats' lag gauge covers the slowest
  /// live replica. Not owned; must be Started by the caller and outlive
  /// this service. Delta-shipping mode only.
  ReplicationFanout* replication = nullptr;
};

/// The recommendation service partitioned into per-core shards behind a
/// hash router, fed by the delta-shipping ingest pipeline
/// (docs/ingest.md). Each shard is a full RecommendationService — its
/// own ingestion queue, applier thread, result cache, recommender — so
/// shards share no mutable state and never contend on locks.
///
/// Two construction modes:
///
///   * Delta-shipping (the ServingSimGraphOptions constructor, the
///     default for SimGraph serving): ONE SimGraphServingRecommender is
///     the builder's source of truth; every shard is a cheap
///     DeltaApplierRecommender that replays the builder's recorded
///     SimGraphDelta ops. The incremental update and propagation run
///     once per event batch regardless of shard count.
///   * Replicated (the RecommenderFactory constructor, kept for generic
///     recommenders and old-vs-new A/B benches): `factory` builds one
///     recommender replica per shard and every shard re-runs the full
///     update per event.
///
/// Either way all writes flow through one DeltaBuilder pipeline:
///
///   Publish --> [global queue] --> builder thread --> shard queues
///
/// The global queue's push ticket is THE global sequence number — there
/// is no publish mutex; the old lockstep-by-mutex scheme is retired.
/// The single builder thread fans out in pop order and stamps the
/// covered sequence number on every forwarded item, so:
///
///   * Recommend(request) routes to the single shard owning the user
///     (router_.ShardOf), where it runs exactly as on an unsharded
///     service.
///   * WaitForApplied(seq) waits on every shard, so after it returns any
///     user's answer — whichever shard owns them — reflects the full
///     acked prefix. AppliedSeq() is correspondingly the minimum across
///     shards.
///   * Stats() aggregates the per-shard registries into one
///     BackendStats (sum of cache entries, min applied seq, per-shard
///     breakdown for the wire's `stats` reply).
///
/// Do not Publish directly to an individual shard() of a live
/// ShardedService: shard queues belong to the pipeline. The accessor
/// exists for tests and read-only inspection.
///
/// See docs/ingest.md for the pipeline design and docs/serving.md
/// ("Sharded serving") for routing and consistency caveats.
class ShardedService : public ServingBackend {
 public:
  using RecommenderFactory =
      std::function<std::unique_ptr<ServingRecommender>()>;

  /// Delta-shipping mode: one SimGraphServingRecommender source feeding
  /// DeltaApplierRecommender shards.
  explicit ShardedService(const ServingSimGraphOptions& simgraph_options,
                          ShardedServiceOptions options = {});

  /// Replicated mode: calls `factory` once per shard to build the
  /// per-shard recommender replicas; every shard re-applies each event.
  explicit ShardedService(const RecommenderFactory& factory,
                          ShardedServiceOptions options = {});
  ~ShardedService() override;

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Trains the builder source and every shard (in parallel, one thread
  /// each), then seeds the appliers with the source's trained snapshot.
  /// Call before Start.
  Status Train(const Dataset& dataset, int64_t train_end);

  /// Starts every shard's applier thread, then the pipeline. Idempotent.
  void Start();

  /// Stops the pipeline (drains the global queue through the builder so
  /// buffered deltas still land), then every shard. Idempotent; also
  /// called by the destructor.
  void Stop();

  uint64_t Publish(const RetweetEvent& event) override;
  uint64_t AppliedSeq() const override;
  void WaitForApplied(uint64_t seq) override;
  RecommendResponse Recommend(const RecommendRequest& request) override;
  /// Groups the batch by owning shard and crosses the router hop once
  /// per shard (each shard serves its sub-batch under one lock), then
  /// reassembles responses in request order. serve.router.batch.*
  /// metrics + a request/route_batch span per batch.
  std::vector<RecommendResponse> RecommendBatch(
      const std::vector<RecommendRequest>& requests) override;
  BackendStats Stats() const override;
  /// Rotates every shard's windowed telemetry; one ShardWindow each.
  void RotateWindows(int64_t window, std::vector<ShardWindow>* out) override;
  /// Merges every shard's flight recorder, slowest first.
  void CollectSlowRequests(int32_t max,
                           std::vector<SlowRequestEntry>* out) const override;

  const ShardRouter& router() const { return router_; }
  int32_t num_shards() const { return router_.num_shards(); }
  int32_t ShardOf(UserId user) const { return router_.ShardOf(user); }

  /// True when constructed in delta-shipping mode.
  bool delta_shipping() const { return source_ != nullptr; }

  /// The builder's source of truth (null in replicated mode). Ingest is
  /// single-threaded inside the builder; inspect only while quiescent.
  SimGraphServingRecommender* builder_recommender() { return source_.get(); }

  /// Sequence number of the last delta/event the pipeline shipped.
  uint64_t BuiltSeq() const { return pipeline_->built_seq(); }

  /// Crash-recovery test hooks, forwarded to DeltaBuilder (see there).
  void CrashBuilderForTest() { pipeline_->CrashForTest(); }
  void RecoverBuilderForTest() { pipeline_->Recover(); }

  /// Direct access to one shard (tests / inspection; see the class
  /// comment about Publish).
  RecommendationService& shard(int32_t i) {
    return *shards_[static_cast<size_t>(i)];
  }
  const RecommendationService& shard(int32_t i) const {
    return *shards_[static_cast<size_t>(i)];
  }

 private:
  void BuildPipeline();

  ShardedServiceOptions options_;
  ShardRouter router_;
  /// Delta mode only: the single recommender the builder thread runs the
  /// real update on. Owned here; referenced by pipeline_.
  std::unique_ptr<SimGraphServingRecommender> source_;
  std::vector<std::unique_ptr<RecommendationService>> shards_;
  /// Delta mode only: the shards' recommenders, downcast once at
  /// construction so Train can seed snapshots without dynamic_cast.
  std::vector<DeltaApplierRecommender*> appliers_;
  /// The single-writer ingest pipeline every Publish flows through.
  std::unique_ptr<DeltaBuilder> pipeline_;
};

}  // namespace serve
}  // namespace simgraph

#endif  // SIMGRAPH_SERVE_SHARDED_SERVICE_H_
