#ifndef SIMGRAPH_SOLVER_ITERATIVE_SOLVERS_H_
#define SIMGRAPH_SOLVER_ITERATIVE_SOLVERS_H_

#include <cstdint>
#include <vector>

#include "solver/sparse_matrix.h"
#include "util/status.h"

namespace simgraph {

/// Which incremental resolution method to use for Ap = b (Section 5.3
/// names Jacobi, Gauss-Seidel and successive over-relaxation).
enum class SolverMethod {
  kJacobi,
  kGaussSeidel,
  kSor,
};

std::string_view SolverMethodName(SolverMethod method);

/// Stopping and relaxation parameters for the iterative solvers.
struct SolverOptions {
  SolverMethod method = SolverMethod::kJacobi;
  /// Stop when the max absolute change of any component falls below this.
  double tolerance = 1e-10;
  int32_t max_iterations = 1000;
  /// SOR relaxation factor omega in (0, 2); ignored by other methods.
  double sor_omega = 1.2;
  /// Optional initial guess; empty means the zero vector.
  std::vector<double> initial_guess;
};

/// Outcome of an iterative solve.
struct SolverResult {
  std::vector<double> solution;
  int32_t iterations = 0;
  /// Max-norm of the last update; <= tolerance iff converged.
  double final_delta = 0.0;
  bool converged = false;
};

/// Solves A p = b with the configured method. Returns InvalidArgument on a
/// size mismatch or a zero diagonal, FailedPrecondition when the iteration
/// exceeds max_iterations without converging (the partial solution is not
/// returned in that case via StatusOr; use SolveAllowDivergence for it).
StatusOr<SolverResult> Solve(const SparseMatrix& a,
                             const std::vector<double>& b,
                             const SolverOptions& options);

/// Like Solve but reports non-convergence through SolverResult::converged
/// instead of an error; useful for convergence studies.
StatusOr<SolverResult> SolveAllowDivergence(const SparseMatrix& a,
                                            const std::vector<double>& b,
                                            const SolverOptions& options);

}  // namespace simgraph

#endif  // SIMGRAPH_SOLVER_ITERATIVE_SOLVERS_H_
