#ifndef SIMGRAPH_SOLVER_SPARSE_MATRIX_H_
#define SIMGRAPH_SOLVER_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace simgraph {

/// One off-diagonal entry of a sparse row.
struct MatrixEntry {
  int32_t col;
  double value;
};

/// Square sparse matrix in CSR form, specialised for the propagation
/// linear system of Section 5.2: the diagonal is stored separately
/// (it is 1.0 for every row of the paper's matrix A) and rows hold only
/// off-diagonal entries.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from per-row entry lists. `diag[i]` is the diagonal of row i;
  /// `rows[i]` holds the off-diagonal entries of row i (cols need not be
  /// sorted; duplicates are summed).
  SparseMatrix(std::vector<double> diag,
               const std::vector<std::vector<MatrixEntry>>& rows);

  int32_t size() const { return static_cast<int32_t>(diag_.size()); }
  int64_t num_nonzeros() const {
    return static_cast<int64_t>(entries_.size()) + size();
  }

  double diagonal(int32_t row) const { return diag_[static_cast<size_t>(row)]; }

  /// Off-diagonal entries of `row`, sorted by column.
  std::span<const MatrixEntry> Row(int32_t row) const {
    return {entries_.data() + offsets_[static_cast<size_t>(row)],
            entries_.data() + offsets_[static_cast<size_t>(row) + 1]};
  }

  /// y = A x (including the diagonal). Precondition: x.size() == size().
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// True when |a_ii| >= sum_j |a_ij| for every row, with strict
  /// inequality in at least one row — the convergence condition the paper
  /// establishes in Section 5.3.
  bool IsDiagonallyDominant() const;

  /// Infinity norm of the Jacobi iteration matrix D^{-1}(L+U): the paper's
  /// ||A|| convergence-speed bound (reported as 0.91 on their dataset).
  double JacobiIterationNorm() const;

 private:
  std::vector<double> diag_;
  std::vector<int64_t> offsets_{0};
  std::vector<MatrixEntry> entries_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_SOLVER_SPARSE_MATRIX_H_
