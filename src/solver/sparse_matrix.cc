#include "solver/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace simgraph {

SparseMatrix::SparseMatrix(std::vector<double> diag,
                           const std::vector<std::vector<MatrixEntry>>& rows)
    : diag_(std::move(diag)) {
  SIMGRAPH_CHECK_EQ(diag_.size(), rows.size());
  offsets_.assign(1, 0);
  offsets_.reserve(diag_.size() + 1);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<MatrixEntry> row = rows[r];
    std::sort(row.begin(), row.end(),
              [](const MatrixEntry& a, const MatrixEntry& b) {
                return a.col < b.col;
              });
    // Sum duplicates; reject diagonal entries (they belong in diag_).
    for (const MatrixEntry& e : row) {
      SIMGRAPH_CHECK_GE(e.col, 0);
      SIMGRAPH_CHECK_LT(static_cast<size_t>(e.col), rows.size());
      SIMGRAPH_CHECK_NE(static_cast<size_t>(e.col), r)
          << "diagonal entries must go in `diag`";
      if (!entries_.empty() &&
          static_cast<int64_t>(entries_.size()) > offsets_.back() &&
          entries_.back().col == e.col) {
        entries_.back().value += e.value;
      } else {
        entries_.push_back(e);
      }
    }
    offsets_.push_back(static_cast<int64_t>(entries_.size()));
  }
}

std::vector<double> SparseMatrix::Multiply(const std::vector<double>& x) const {
  SIMGRAPH_CHECK_EQ(static_cast<int32_t>(x.size()), size());
  std::vector<double> y(x.size(), 0.0);
  for (int32_t r = 0; r < size(); ++r) {
    double acc = diag_[static_cast<size_t>(r)] * x[static_cast<size_t>(r)];
    for (const MatrixEntry& e : Row(r)) {
      acc += e.value * x[static_cast<size_t>(e.col)];
    }
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

bool SparseMatrix::IsDiagonallyDominant() const {
  bool strict_somewhere = false;
  for (int32_t r = 0; r < size(); ++r) {
    double off = 0.0;
    for (const MatrixEntry& e : Row(r)) off += std::abs(e.value);
    const double d = std::abs(diag_[static_cast<size_t>(r)]);
    if (d < off) return false;
    if (d > off) strict_somewhere = true;
  }
  return strict_somewhere || size() == 0;
}

double SparseMatrix::JacobiIterationNorm() const {
  double norm = 0.0;
  for (int32_t r = 0; r < size(); ++r) {
    const double d = std::abs(diag_[static_cast<size_t>(r)]);
    if (d == 0.0) continue;
    double off = 0.0;
    for (const MatrixEntry& e : Row(r)) off += std::abs(e.value);
    norm = std::max(norm, off / d);
  }
  return norm;
}

}  // namespace simgraph
