#include "solver/iterative_solvers.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace simgraph {
namespace {

// One Jacobi sweep: x_new[i] = (b[i] - sum_offdiag a_ij x_old[j]) / a_ii.
// Returns the max-norm of the update.
double JacobiSweep(const SparseMatrix& a, const std::vector<double>& b,
                   const std::vector<double>& x, std::vector<double>& x_new) {
  double delta = 0.0;
  for (int32_t i = 0; i < a.size(); ++i) {
    double acc = b[static_cast<size_t>(i)];
    for (const MatrixEntry& e : a.Row(i)) {
      acc -= e.value * x[static_cast<size_t>(e.col)];
    }
    const double v = acc / a.diagonal(i);
    delta = std::max(delta, std::abs(v - x[static_cast<size_t>(i)]));
    x_new[static_cast<size_t>(i)] = v;
  }
  return delta;
}

// One Gauss-Seidel / SOR sweep, updating x in place. omega == 1 gives
// plain Gauss-Seidel.
double SorSweep(const SparseMatrix& a, const std::vector<double>& b,
                double omega, std::vector<double>& x) {
  double delta = 0.0;
  for (int32_t i = 0; i < a.size(); ++i) {
    double acc = b[static_cast<size_t>(i)];
    for (const MatrixEntry& e : a.Row(i)) {
      acc -= e.value * x[static_cast<size_t>(e.col)];
    }
    const double gs = acc / a.diagonal(i);
    const double old = x[static_cast<size_t>(i)];
    const double v = old + omega * (gs - old);
    delta = std::max(delta, std::abs(v - old));
    x[static_cast<size_t>(i)] = v;
  }
  return delta;
}

Status ValidateInputs(const SparseMatrix& a, const std::vector<double>& b,
                      const SolverOptions& options) {
  if (static_cast<int32_t>(b.size()) != a.size()) {
    return Status::InvalidArgument("b size does not match matrix size");
  }
  if (!options.initial_guess.empty() &&
      static_cast<int32_t>(options.initial_guess.size()) != a.size()) {
    return Status::InvalidArgument("initial guess size mismatch");
  }
  if (options.method == SolverMethod::kSor &&
      (options.sor_omega <= 0.0 || options.sor_omega >= 2.0)) {
    return Status::InvalidArgument("SOR omega must lie in (0, 2)");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  for (int32_t i = 0; i < a.size(); ++i) {
    if (a.diagonal(i) == 0.0) {
      return Status::InvalidArgument("zero diagonal at row " +
                                     std::to_string(i));
    }
  }
  return Status::Ok();
}

}  // namespace

std::string_view SolverMethodName(SolverMethod method) {
  switch (method) {
    case SolverMethod::kJacobi:
      return "jacobi";
    case SolverMethod::kGaussSeidel:
      return "gauss-seidel";
    case SolverMethod::kSor:
      return "sor";
  }
  return "unknown";
}

StatusOr<SolverResult> SolveAllowDivergence(const SparseMatrix& a,
                                            const std::vector<double>& b,
                                            const SolverOptions& options) {
  SIMGRAPH_RETURN_IF_ERROR(ValidateInputs(a, b, options));

  SolverResult result;
  result.solution = options.initial_guess.empty()
                        ? std::vector<double>(b.size(), 0.0)
                        : options.initial_guess;

  std::vector<double> scratch;
  if (options.method == SolverMethod::kJacobi) {
    scratch.resize(b.size());
  }

  for (int32_t it = 0; it < options.max_iterations; ++it) {
    double delta = 0.0;
    switch (options.method) {
      case SolverMethod::kJacobi:
        delta = JacobiSweep(a, b, result.solution, scratch);
        result.solution.swap(scratch);
        break;
      case SolverMethod::kGaussSeidel:
        delta = SorSweep(a, b, /*omega=*/1.0, result.solution);
        break;
      case SolverMethod::kSor:
        delta = SorSweep(a, b, options.sor_omega, result.solution);
        break;
    }
    result.iterations = it + 1;
    result.final_delta = delta;
    if (delta <= options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  result.converged = false;
  return result;
}

StatusOr<SolverResult> Solve(const SparseMatrix& a,
                             const std::vector<double>& b,
                             const SolverOptions& options) {
  StatusOr<SolverResult> result = SolveAllowDivergence(a, b, options);
  if (!result.ok()) return result.status();
  if (!result->converged) {
    return Status::FailedPrecondition(
        "solver did not converge within " +
        std::to_string(options.max_iterations) + " iterations (delta=" +
        std::to_string(result->final_delta) + ")");
  }
  return result;
}

}  // namespace simgraph
