#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/logging.h"

namespace simgraph {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TableWriter::TableWriter(std::string title) : title_(std::move(title)) {}

void TableWriter::SetHeader(std::vector<std::string> header) {
  SIMGRAPH_CHECK(rows_.empty()) << "SetHeader must precede AddRow";
  header_ = std::move(header);
}

void TableWriter::AddRow(std::vector<std::string> row) {
  SIMGRAPH_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::Cell(int64_t v) { return std::to_string(v); }
std::string TableWriter::Cell(uint64_t v) { return std::to_string(v); }
std::string TableWriter::Cell(int v) { return std::to_string(v); }

std::string TableWriter::Cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = "== " + title_ + " ==\n";
  out += sep;
  out += render_row(header_);
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TableWriter::ToCsv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  render(header_);
  for (const auto& row : rows_) render(row);
  return out;
}

void TableWriter::Print(std::ostream& os) const {
  os << ToAscii() << "\n";
}

}  // namespace simgraph
