#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {

namespace {
// Set once at worker startup; -1 on every thread that is not a pool worker.
thread_local int t_worker_index = -1;
}  // namespace

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_index = i;
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  const bool metrics_on = metrics::Enabled();
  Task queued{std::move(task), {}, metrics_on};
  if (metrics_on) queued.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    SIMGRAPH_CHECK(!shutdown_);
    queue_.push(std::move(queued));
    ++pending_;
    if (metrics_on) {
      SIMGRAPH_COUNTER_ADD("threadpool.tasks", 1);
      SIMGRAPH_GAUGE_SET("threadpool.queue_depth",
                         static_cast<double>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (task.timed && metrics::Enabled()) {
      const auto start = std::chrono::steady_clock::now();
      SIMGRAPH_HISTOGRAM_RECORD(
          "threadpool.queue_wait_seconds",
          std::chrono::duration<double>(start - task.enqueued).count());
      SIMGRAPH_TRACE_SPAN("ThreadPool::Task", "threadpool");
      task.fn();
      SIMGRAPH_HISTOGRAM_RECORD(
          "threadpool.task_seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    } else {
      task.fn();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t num_chunks =
      std::min<int64_t>(n, static_cast<int64_t>(pool.num_threads()) * 4);
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;
  for (int64_t begin = 0; begin < n; begin += chunk) {
    const int64_t end = std::min(begin + chunk, n);
    pool.Schedule([&fn, begin, end] { fn(begin, end); });
  }
  pool.Wait();
}

}  // namespace simgraph
