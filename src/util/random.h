#ifndef SIMGRAPH_UTIL_RANDOM_H_
#define SIMGRAPH_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace simgraph {

/// Deterministic, seedable PRNG (xoshiro256**). All randomness in the
/// library flows through explicit Rng instances so experiments are
/// reproducible for a fixed seed.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams
  /// (state is expanded with SplitMix64).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// Precondition: rate > 0.
  double NextExponential(double rate);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// Creates a child generator with an independent stream; useful for
  /// deterministic parallelism (one child per shard).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Samples from {0, 1, ..., n-1} with probability proportional to
/// (i+1)^(-exponent) (a Zipf law). Precomputes the CDF once; sampling is
/// O(log n) by binary search.
class ZipfDistribution {
 public:
  /// Precondition: n > 0, exponent >= 0.
  ZipfDistribution(int64_t n, double exponent);

  /// Draws one rank in [0, n).
  int64_t Sample(Rng& rng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;
};

/// Draws an integer from a discrete power-law P(x) ~ x^(-alpha) on
/// [x_min, x_max] via inverse-CDF of the continuous law, rounded down.
/// Useful for degree and activity distributions.
int64_t SamplePowerLaw(Rng& rng, double alpha, int64_t x_min, int64_t x_max);

/// Samples `k` distinct indices uniformly from [0, n) (Floyd's algorithm).
/// Precondition: 0 <= k <= n. Result is unsorted.
std::vector<int64_t> SampleWithoutReplacement(Rng& rng, int64_t n, int64_t k);

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_RANDOM_H_
