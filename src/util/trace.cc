#include "util/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "util/env.h"
#include "util/logging.h"

namespace simgraph {
namespace trace {

namespace internal_trace {
std::atomic<bool> g_enabled{GetEnvInt64("SIMGRAPH_TRACE", 0) != 0};
}  // namespace internal_trace

bool SetEnabled(bool enabled) {
  return internal_trace::g_enabled.exchange(enabled,
                                            std::memory_order_relaxed);
}

namespace {

std::atomic<uint64_t> g_next_request_id{1};
std::atomic<int64_t> g_slow_request_threshold_us{
    GetEnvInt64("SIMGRAPH_SLOW_REQUEST_US", 0)};
std::atomic<bool> g_force_stage_collection{false};

// The RequestScope currently governing this thread (nullptr outside any
// request). TraceSpan reads it to attach to the request id and feed the
// stage breakdown.
thread_local RequestScope* t_current_scope = nullptr;

// One buffered event. Names are copied at record time, so span call
// sites may pass literals without lifetime coupling to the export.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase;      // 'X' complete, 'i' instant
  int64_t ts_us;   // microseconds since the process trace epoch
  int64_t dur_us;  // for 'X' events
  /// Nonzero attaches the event to a request tree; exported as an
  /// async-nestable "b"/"e" pair instead of one 'X' event.
  uint64_t request_id = 0;
  /// True for the request's root span (the RequestScope itself); export
  /// drops request-scoped events whose id has no root.
  bool request_root = false;
};

// Per-thread event buffer. Buffers are owned by a leaked global list and
// never removed, so events survive thread exit and Export() can run
// while other threads keep recording (each append locks only its own
// buffer's mutex, which is uncontended on the hot path).
struct ThreadLog {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int64_t tid;
};

struct GlobalState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

GlobalState& Global() {
  static GlobalState* state = new GlobalState;
  return *state;
}

ThreadLog& LocalLog() {
  thread_local ThreadLog* log = [] {
    GlobalState& g = Global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.logs.push_back(std::make_unique<ThreadLog>());
    g.logs.back()->tid = static_cast<int64_t>(g.logs.size());
    return g.logs.back().get();
  }();
  return *log;
}

void BufferEvent(TraceEvent event) {
  ThreadLog& log = LocalLog();
  std::lock_guard<std::mutex> lock(log.mu);
  log.events.push_back(std::move(event));
}

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

void WriteHexId(std::ostream& out, uint64_t id) {
  char buffer[2 + 16 + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(id));
  out << '"' << buffer << '"';
}

// Emits one request-scoped event as an async-nestable begin/end pair on
// the "request" category, id'd by the request — chrome://tracing (and
// Perfetto) render all pairs sharing an id as one nested track, so the
// whole request reads as one connected tree even across threads. The
// span's own category moves into args.
void WriteAsyncPair(std::ostream& out, const TraceEvent& e, int64_t tid,
                    bool* first) {
  out << (*first ? "\n" : ",\n") << "{\"name\": ";
  *first = false;
  WriteJsonString(out, e.name);
  out << ", \"cat\": \"request\", \"ph\": \"b\", \"ts\": " << e.ts_us
      << ", \"pid\": 1, \"tid\": " << tid << ", \"id\": ";
  WriteHexId(out, e.request_id);
  out << ", \"args\": {\"cat\": ";
  WriteJsonString(out, e.category);
  if (e.request_root) out << ", \"root\": true";
  out << "}},\n";
  out << "{\"name\": ";
  WriteJsonString(out, e.name);
  out << ", \"cat\": \"request\", \"ph\": \"e\", \"ts\": "
      << e.ts_us + e.dur_us << ", \"pid\": 1, \"tid\": " << tid
      << ", \"id\": ";
  WriteHexId(out, e.request_id);
  out << "}";
}

}  // namespace

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Global().epoch)
      .count();
}

uint64_t NewRequestId() {
  return g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

RequestScope* CurrentScope() { return t_current_scope; }

int64_t SetSlowRequestThresholdUs(int64_t threshold_us) {
  return g_slow_request_threshold_us.exchange(threshold_us,
                                              std::memory_order_relaxed);
}

int64_t SlowRequestThresholdUs() {
  return g_slow_request_threshold_us.load(std::memory_order_relaxed);
}

bool SetForceStageCollection(bool force) {
  return g_force_stage_collection.exchange(force, std::memory_order_relaxed);
}

bool ForceStageCollection() {
  return g_force_stage_collection.load(std::memory_order_relaxed);
}

void Instant(const char* name, const char* category) {
  if (!Enabled()) return;
  BufferEvent(TraceEvent{name, category, 'i', NowMicros(), 0, 0, false});
}

void RecordRequestSpan(const char* name, const char* category,
                       int64_t start_us, int64_t dur_us,
                       uint64_t request_id) {
  if (!Enabled() || request_id == 0) return;
  BufferEvent(TraceEvent{name, category, 'X', start_us, dur_us, request_id,
                         false});
}

int64_t NumBufferedEvents() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  int64_t total = 0;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    total += static_cast<int64_t>(log->events.size());
  }
  return total;
}

void Clear() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
}

void WriteJson(std::ostream& out) {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  // Pass 1: the set of request ids that recorded a root span. Children
  // of requests without a root (tracing toggled on mid-request, or the
  // root dropped by a toggle-off) would render as orphan trees — they
  // are dropped instead.
  std::unordered_set<uint64_t> rooted;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    for (const TraceEvent& e : log->events) {
      if (e.request_root) rooted.insert(e.request_id);
    }
  }
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    for (const TraceEvent& e : log->events) {
      if (e.request_id != 0) {
        if (rooted.contains(e.request_id)) {
          WriteAsyncPair(out, e, log->tid, &first);
        }
        continue;
      }
      out << (first ? "\n" : ",\n") << "{\"name\": ";
      first = false;
      WriteJsonString(out, e.name);
      out << ", \"cat\": ";
      WriteJsonString(out, e.category);
      out << ", \"ph\": \"" << e.phase << "\", \"ts\": " << e.ts_us;
      if (e.phase == 'X') out << ", \"dur\": " << e.dur_us;
      if (e.phase == 'i') out << ", \"s\": \"t\"";
      out << ", \"pid\": 1, \"tid\": " << log->tid << "}";
    }
  }
  out << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

Status Export(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  WriteJson(out);
  out.flush();
  if (!out) {
    return Status::IoError("failed writing trace output file: " + path);
  }
  return Status::Ok();
}

RequestScope::RequestScope(const char* op, uint64_t adopt_id,
                           bool adopt_recorded)
    : op_(op) {
  prev_ = t_current_scope;
  if (adopt_id == 0 && prev_ != nullptr) {
    // Nested on the same thread: the outer scope owns the request; this
    // one is a transparent passthrough.
    passive_ = true;
    return;
  }
  if (adopt_id != 0) {
    id_ = adopt_id;
    owner_ = false;
    // Never record under an id whose root was not recorded — that would
    // be a dangling parent in the exported tree.
    recording_ = adopt_recorded && Enabled();
  } else {
    id_ = NewRequestId();
    owner_ = true;
    recording_ = Enabled();
  }
  collecting_ = recording_ || (owner_ && (SlowRequestThresholdUs() > 0 ||
                                          ForceStageCollection()));
  if (collecting_) start_us_ = NowMicros();
  t_current_scope = this;
}

RequestScope::~RequestScope() {
  if (passive_) return;
  t_current_scope = prev_;
  if (start_us_ < 0) return;
  const int64_t end_us = NowMicros();
  const int64_t total_us = end_us - start_us_;
  if (owner_ && recording_ && Enabled()) {
    BufferEvent(TraceEvent{op_, "serve", 'X', start_us_, total_us, id_,
                           /*request_root=*/true});
  }
  const int64_t threshold = SlowRequestThresholdUs();
  if (owner_ && threshold > 0 && total_us >= threshold) {
    // One structured JSON line per slow request; stage names are the
    // child span names (docs/observability.md documents the format).
    std::ostringstream line;
    line << "{\"slow_request\":{\"request_id\":" << id_ << ",\"op\":\""
         << op_ << "\",\"total_us\":" << total_us;
    for (int i = 0; i < num_attributes_; ++i) {
      line << ",\"" << attributes_[i].key
           << "\":" << attributes_[i].value;
    }
    line << ",\"stages\":{";
    for (int i = 0; i < num_stages_; ++i) {
      if (i > 0) line << ",";
      line << "\"" << stages_[i].name << "\":" << stages_[i].micros;
    }
    line << "}}}";
    SIMGRAPH_LOG(Warning) << line.str();
  }
}

void RequestScope::SetAttribute(const char* key, int64_t value) {
  if (passive_) {
    if (prev_ != nullptr) prev_->SetAttribute(key, value);
    return;
  }
  if (num_attributes_ >= kMaxAttributes) return;
  attributes_[num_attributes_++] = Attribute{key, value};
}

int64_t RequestScope::ElapsedUs() const {
  if (passive_) return prev_ != nullptr ? prev_->ElapsedUs() : 0;
  return start_us_ >= 0 ? NowMicros() - start_us_ : 0;
}

void RequestScope::AddStage(const char* name, int64_t micros) {
  if (num_stages_ >= kMaxStages) return;
  stages_[num_stages_++] = StageLatency{name, micros};
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name),
      category_(category),
      start_us_(0),
      request_id_(0),
      scope_(t_current_scope),
      active_(Enabled()),
      collect_(false) {
  if (scope_ != nullptr && scope_->collecting()) {
    collect_ = true;
    if (active_ && scope_->recording()) request_id_ = scope_->request_id();
  }
  if (active_ || collect_) start_us_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_ && !collect_) return;
  const int64_t end_us = NowMicros();
  // The scope pointer is only valid while that scope is still current
  // on this thread (spans are expected to close inside their scope).
  if (collect_ && t_current_scope == scope_) {
    scope_->AddStage(name_, end_us - start_us_);
  }
  if (!active_ || !Enabled()) return;
  BufferEvent(TraceEvent{name_, category_, 'X', start_us_,
                         end_us - start_us_, request_id_, false});
}

}  // namespace trace
}  // namespace simgraph
