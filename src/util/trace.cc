#include "util/trace.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/env.h"

namespace simgraph {
namespace trace {

namespace internal_trace {
std::atomic<bool> g_enabled{GetEnvInt64("SIMGRAPH_TRACE", 0) != 0};
}  // namespace internal_trace

bool SetEnabled(bool enabled) {
  return internal_trace::g_enabled.exchange(enabled,
                                            std::memory_order_relaxed);
}

namespace {

// One buffered event. Names are copied at record time, so span call
// sites may pass literals without lifetime coupling to the export.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase;      // 'X' complete, 'i' instant
  int64_t ts_us;   // microseconds since the process trace epoch
  int64_t dur_us;  // for 'X' events
};

// Per-thread event buffer. Buffers are owned by a leaked global list and
// never removed, so events survive thread exit and Export() can run
// while other threads keep recording (each append locks only its own
// buffer's mutex, which is uncontended on the hot path).
struct ThreadLog {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int64_t tid;
};

struct GlobalState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

GlobalState& Global() {
  static GlobalState* state = new GlobalState;
  return *state;
}

ThreadLog& LocalLog() {
  thread_local ThreadLog* log = [] {
    GlobalState& g = Global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.logs.push_back(std::make_unique<ThreadLog>());
    g.logs.back()->tid = static_cast<int64_t>(g.logs.size());
    return g.logs.back().get();
  }();
  return *log;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Global().epoch)
      .count();
}

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

void Instant(const char* name, const char* category) {
  if (!Enabled()) return;
  const int64_t now = NowMicros();
  ThreadLog& log = LocalLog();
  std::lock_guard<std::mutex> lock(log.mu);
  log.events.push_back(TraceEvent{name, category, 'i', now, 0});
}

int64_t NumBufferedEvents() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  int64_t total = 0;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    total += static_cast<int64_t>(log->events.size());
  }
  return total;
}

void Clear() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
}

void WriteJson(std::ostream& out) {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& log : g.logs) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    for (const TraceEvent& e : log->events) {
      out << (first ? "\n" : ",\n") << "{\"name\": ";
      first = false;
      WriteJsonString(out, e.name);
      out << ", \"cat\": ";
      WriteJsonString(out, e.category);
      out << ", \"ph\": \"" << e.phase << "\", \"ts\": " << e.ts_us;
      if (e.phase == 'X') out << ", \"dur\": " << e.dur_us;
      if (e.phase == 'i') out << ", \"s\": \"t\"";
      out << ", \"pid\": 1, \"tid\": " << log->tid << "}";
    }
  }
  out << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
}

Status Export(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  WriteJson(out);
  out.flush();
  if (!out) {
    return Status::IoError("failed writing trace output file: " + path);
  }
  return Status::Ok();
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category), start_us_(0), active_(Enabled()) {
  if (active_) start_us_ = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_ || !Enabled()) return;
  const int64_t end_us = NowMicros();
  ThreadLog& log = LocalLog();
  std::lock_guard<std::mutex> lock(log.mu);
  log.events.push_back(
      TraceEvent{name_, category_, 'X', start_us_, end_us - start_us_});
}

}  // namespace trace
}  // namespace simgraph
