#include "util/timeseries.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace simgraph {
namespace timeseries {
namespace {

constexpr int kNumBuckets = metrics::LatencyHistogram::kNumBuckets;
constexpr double kBase = metrics::LatencyHistogram::kBase;

// Same bucketing as metrics::LatencyHistogram so per-window percentiles
// derived here and cumulative percentiles derived there agree bucket for
// bucket.
int BucketIndex(double value) {
  if (!(value > kBase)) return 0;
  const int index = static_cast<int>(std::ceil(std::log2(value / kBase)));
  return std::clamp(index, 0, kNumBuckets - 1);
}

double BucketLowerBound(int i) {
  return i == 0 ? 0.0 : kBase * std::ldexp(1.0, i - 1);
}

void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

// 0 is the "empty" sentinel for both extremes (windows record positive
// quantities; non-positive samples are clamped into bucket 0 anyway).
void AtomicMin(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while ((cur == 0.0 || value < cur) &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while ((cur == 0.0 || value > cur) &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
  }
}

// Nearest-rank percentile over a bucket-count array, interpolated within
// the matched bucket — the per-window analogue of
// metrics::LatencyHistogram::Percentile. `hi_cap` bounds the open-ended
// last bucket (the window max when known, else one octave above its
// lower bound).
double PercentileFromBuckets(const std::array<int64_t, kNumBuckets>& buckets,
                             int64_t n, double p, double lo_cap,
                             double hi_cap) {
  if (n <= 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
  int64_t cumulative = 0;
  double result = hi_cap;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lo = BucketLowerBound(i);
      double hi = metrics::LatencyHistogram::BucketUpperBound(i);
      if (!std::isfinite(hi)) hi = hi_cap > lo ? hi_cap : lo * 2.0;
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(in_bucket);
      result = lo + frac * (hi - lo);
      break;
    }
    cumulative += in_bucket;
  }
  if (lo_cap > 0.0) result = std::max(result, lo_cap);
  if (hi_cap > 0.0) result = std::min(result, hi_cap);
  return result;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("0");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out->append(buf);
}

// One histogram's cumulative state at a tick; windows are bucket-count
// deltas between consecutive snapshots.
struct HistSnapshot {
  std::array<int64_t, kNumBuckets> buckets{};
  int64_t count = 0;
  double sum = 0.0;
};

void SnapshotRegistry(std::map<std::string, int64_t>* counters,
                      std::map<std::string, double>* gauges,
                      std::map<std::string, HistSnapshot>* histograms) {
  metrics::Registry::Global().ForEach(
      [&](const std::string& name, const metrics::Counter& c) {
        (*counters)[name] = c.value();
      },
      [&](const std::string& name, const metrics::Gauge& g) {
        (*gauges)[name] = g.value();
      },
      [&](const std::string& name, const metrics::LatencyHistogram& h) {
        auto& hist = (*histograms)[name];
        for (int i = 0; i < kNumBuckets; ++i) {
          hist.buckets[static_cast<size_t>(i)] = h.bucket_count(i);
        }
        hist.count = h.count();
        hist.sum = h.sum();
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// WindowedHistogram

struct WindowedHistogram::Slot {
  std::atomic<int64_t> window{-1};
  std::atomic<int64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets{};
};

WindowedHistogram::WindowedHistogram(int32_t capacity)
    : capacity_(std::max(capacity, 2)), slots_(new Slot[capacity_]) {
  // Window 0 is open from construction.
  slots_[0].window.store(0, std::memory_order_relaxed);
}

WindowedHistogram::~WindowedHistogram() = default;

WindowedHistogram::Slot& WindowedHistogram::slot(int64_t window) const {
  return slots_[static_cast<size_t>(window % capacity_)];
}

void WindowedHistogram::Add(double value) {
  Slot& s = slot(current_.load(std::memory_order_acquire));
  s.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(s.sum, value);
  AtomicMin(s.min, value);
  AtomicMax(s.max, value);
}

void WindowedHistogram::AdvanceTo(int64_t window) {
  const int64_t cur = current_.load(std::memory_order_relaxed);
  if (window <= cur) return;
  // Only slots actually being opened get cleared: a jump past `capacity`
  // windows touches `capacity` slots, never more.
  const int64_t first = std::max(cur + 1, window - capacity_ + 1);
  for (int64_t w = first; w <= window; ++w) {
    Slot& s = slot(w);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(0.0, std::memory_order_relaxed);
    s.max.store(0.0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.window.store(w, std::memory_order_relaxed);
  }
  current_.store(window, std::memory_order_release);
}

WindowStats WindowedHistogram::Window(int64_t window) const {
  const Slot& s = slot(std::max<int64_t>(window, 0));
  WindowStats stats;
  stats.window = s.window.load(std::memory_order_relaxed);
  if (stats.window != window) return stats;  // evicted or never opened
  std::array<int64_t, kNumBuckets> buckets;
  int64_t n = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[static_cast<size_t>(i)] =
        s.buckets[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    n += buckets[static_cast<size_t>(i)];
  }
  stats.count = n;
  stats.sum = s.sum.load(std::memory_order_relaxed);
  stats.min = s.min.load(std::memory_order_relaxed);
  stats.max = s.max.load(std::memory_order_relaxed);
  stats.p50 = PercentileFromBuckets(buckets, n, 50.0, stats.min, stats.max);
  stats.p95 = PercentileFromBuckets(buckets, n, 95.0, stats.min, stats.max);
  stats.p99 = PercentileFromBuckets(buckets, n, 99.0, stats.min, stats.max);
  return stats;
}

std::vector<WindowStats> WindowedHistogram::LastClosed(int32_t n) const {
  std::vector<WindowStats> out;
  const int64_t cur = current_window();
  const int64_t first =
      std::max<int64_t>(0, std::max(cur - n, cur - capacity_ + 1));
  for (int64_t w = first; w < cur; ++w) {
    WindowStats stats = Window(w);
    if (stats.window == w) out.push_back(stats);
  }
  return out;
}

// ---------------------------------------------------------------------------
// RateMeter

RateMeter::RateMeter(int32_t capacity)
    : capacity_(std::max(capacity, 2)), slots_(new Slot[capacity_]) {
  slots_[0].window.store(0, std::memory_order_relaxed);
}

RateMeter::Slot& RateMeter::slot(int64_t window) const {
  return slots_[static_cast<size_t>(window % capacity_)];
}

void RateMeter::Add(int64_t delta) {
  slot(current_.load(std::memory_order_acquire))
      .count.fetch_add(delta, std::memory_order_relaxed);
}

void RateMeter::AdvanceTo(int64_t window) {
  const int64_t cur = current_.load(std::memory_order_relaxed);
  if (window <= cur) return;
  const int64_t first = std::max(cur + 1, window - capacity_ + 1);
  for (int64_t w = first; w <= window; ++w) {
    Slot& s = slot(w);
    s.count.store(0, std::memory_order_relaxed);
    s.window.store(w, std::memory_order_relaxed);
  }
  current_.store(window, std::memory_order_release);
}

int64_t RateMeter::Count(int64_t window) const {
  const Slot& s = slot(std::max<int64_t>(window, 0));
  if (s.window.load(std::memory_order_relaxed) != window) return 0;
  return s.count.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TimeseriesRecorder

struct TimeseriesRecorder::PrevState {
  std::map<std::string, int64_t> counters;
  std::map<std::string, HistSnapshot> histograms;
  std::chrono::steady_clock::time_point last_tick;
  std::ofstream ndjson;
  bool ndjson_opened = false;
  bool ndjson_warned = false;
};

namespace {

std::string SerializeRecord(const TimeseriesRecorder::Record& rec) {
  std::string out;
  out.reserve(512);
  out.append("{\"v\":1,\"window\":");
  out.append(std::to_string(rec.window));
  out.append(",\"wall_ms\":");
  out.append(std::to_string(rec.wall_ms));
  out.append(",\"dt_s\":");
  AppendJsonDouble(&out, rec.dt_s);
  out.append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, delta] : rec.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out.append(std::to_string(delta));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : rec.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendJsonDouble(&out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : rec.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.append(":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    AppendJsonDouble(&out, h.sum);
    out.append(",\"p50\":");
    AppendJsonDouble(&out, h.p50);
    out.append(",\"p95\":");
    AppendJsonDouble(&out, h.p95);
    out.append(",\"p99\":");
    AppendJsonDouble(&out, h.p99);
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

}  // namespace

TimeseriesRecorder::TimeseriesRecorder(Options options)
    : options_(std::move(options)), prev_(new PrevState) {
  options_.ring_capacity = std::max(options_.ring_capacity, 1);
  std::map<std::string, double> ignored_gauges;
  SnapshotRegistry(&prev_->counters, &ignored_gauges, &prev_->histograms);
  prev_->last_tick = std::chrono::steady_clock::now();
}

TimeseriesRecorder::~TimeseriesRecorder() { Stop(); }

bool TimeseriesRecorder::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (started_ || options_.interval_ms <= 0) return false;
  stopping_ = false;
  started_ = true;
  thread_ = std::thread(&TimeseriesRecorder::Loop, this);
  return true;
}

void TimeseriesRecorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  started_ = false;
  stopping_ = false;
}

void TimeseriesRecorder::Loop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [&] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    Tick();
    lock.lock();
  }
}

void TimeseriesRecorder::Tick() {
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  const auto now = std::chrono::steady_clock::now();
  double dt_s =
      std::chrono::duration<double>(now - prev_->last_tick).count();
  if (dt_s <= 0.0) dt_s = 1e-9;
  const int64_t window = windows_.load(std::memory_order_relaxed);

  if (options_.on_rotate) options_.on_rotate(window, dt_s);

  Record rec;
  rec.window = window;
  rec.dt_s = dt_s;
  rec.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();

  std::map<std::string, int64_t> counters;
  std::map<std::string, HistSnapshot> histograms;
  SnapshotRegistry(&counters, &rec.gauges, &histograms);

  // Quiet metrics are omitted from the record: a counter that did not
  // move or a histogram with no samples this window carries no signal,
  // and leaving them out keeps NDJSON lines proportional to activity.
  for (const auto& [name, value] : counters) {
    const auto it = prev_->counters.find(name);
    const int64_t delta = value - (it == prev_->counters.end() ? 0 : it->second);
    if (delta != 0) rec.counters[name] = delta;
  }
  for (const auto& [name, hist] : histograms) {
    const auto it = prev_->histograms.find(name);
    std::array<int64_t, kNumBuckets> delta{};
    int64_t n = 0;
    double sum_delta = hist.sum;
    if (it == prev_->histograms.end()) {
      delta = hist.buckets;
      for (int64_t b : delta) n += b;
    } else {
      for (int i = 0; i < kNumBuckets; ++i) {
        delta[static_cast<size_t>(i)] =
            hist.buckets[static_cast<size_t>(i)] -
            it->second.buckets[static_cast<size_t>(i)];
        n += delta[static_cast<size_t>(i)];
      }
      sum_delta = hist.sum - it->second.sum;
    }
    if (n <= 0) continue;
    HistogramWindow hw;
    hw.count = n;
    hw.sum = sum_delta;
    hw.p50 = PercentileFromBuckets(delta, n, 50.0, 0.0, 0.0);
    hw.p95 = PercentileFromBuckets(delta, n, 95.0, 0.0, 0.0);
    hw.p99 = PercentileFromBuckets(delta, n, 99.0, 0.0, 0.0);
    rec.histograms[name] = hw;
  }

  rec.json = SerializeRecord(rec);

  if (!options_.ndjson_path.empty()) {
    if (!prev_->ndjson_opened) {
      prev_->ndjson.open(options_.ndjson_path, std::ios::app);
      prev_->ndjson_opened = true;
    }
    if (prev_->ndjson) {
      prev_->ndjson << rec.json << '\n';
      prev_->ndjson.flush();
    } else if (!prev_->ndjson_warned) {
      prev_->ndjson_warned = true;
      SIMGRAPH_LOG(Warning) << "timeseries: cannot append to "
                            << options_.ndjson_path;
    }
  }

  prev_->counters = std::move(counters);
  prev_->histograms = std::move(histograms);
  prev_->last_tick = now;

  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(rec);
    if (static_cast<int32_t>(ring_.size()) > options_.ring_capacity) {
      ring_.erase(ring_.begin());
    }
  }
  windows_.store(window + 1, std::memory_order_relaxed);

  if (options_.on_record) options_.on_record(rec);
}

std::vector<TimeseriesRecorder::Record> TimeseriesRecorder::Recent(
    int32_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min<size_t>(ring_.size(), std::max(max, 0));
  return std::vector<Record>(ring_.end() - static_cast<ptrdiff_t>(n),
                             ring_.end());
}

std::vector<std::string> TimeseriesRecorder::RecentJson(int32_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min<size_t>(ring_.size(), std::max(max, 0));
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    out.push_back(ring_[i].json);
  }
  return out;
}

}  // namespace timeseries
}  // namespace simgraph
