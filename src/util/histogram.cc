#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace simgraph {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  SIMGRAPH_CHECK(!samples_.empty());
  SortIfNeeded();
  return samples_.front();
}

double Histogram::Max() const {
  SIMGRAPH_CHECK(!samples_.empty());
  SortIfNeeded();
  return samples_.back();
}

double Histogram::Percentile(double p) const {
  // Empty histograms are common at reporting time (a stage that never
  // ran, a window that saw no samples); a quiet NaN lets callers print
  // or skip the cell instead of crashing the whole report.
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  SIMGRAPH_CHECK_GE(p, 0.0);
  SIMGRAPH_CHECK_LE(p, 100.0);
  SortIfNeeded();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Histogram::SortIfNeeded() const {
  if (sorted_) return;
  auto& mutable_samples = const_cast<std::vector<double>&>(samples_);
  std::sort(mutable_samples.begin(), mutable_samples.end());
  sorted_ = true;
}

BucketedCounter::BucketedCounter(std::vector<int64_t> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  SIMGRAPH_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    SIMGRAPH_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
}

void BucketedCounter::Add(int64_t value) { AddCount(value, 1); }

void BucketedCounter::AddCount(int64_t value, int64_t count) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const size_t idx = static_cast<size_t>(it - upper_bounds_.begin());
  counts_[idx] += count;
  total_ += count;
}

std::vector<Bucket> BucketedCounter::buckets() const {
  std::vector<Bucket> out;
  out.reserve(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    std::string label;
    if (i == 0) {
      label = std::to_string(upper_bounds_[0]);
    } else if (i < upper_bounds_.size()) {
      const int64_t lo = upper_bounds_[i - 1] + 1;
      const int64_t hi = upper_bounds_[i];
      label = (lo == hi) ? std::to_string(lo)
                         : std::to_string(lo) + "-" + std::to_string(hi);
    } else {
      label = std::to_string(upper_bounds_.back()) + "+";
    }
    out.push_back(Bucket{std::move(label), counts_[i]});
  }
  return out;
}

void LogBinnedCounter::Add(int64_t value) {
  if (value < 1) value = 1;
  size_t bin = 0;
  while ((int64_t{1} << (bin + 1)) <= value) ++bin;
  if (bin >= counts_.size()) counts_.resize(bin + 1, 0);
  ++counts_[bin];
  ++total_;
}

std::vector<std::pair<int64_t, int64_t>> LogBinnedCounter::bins() const {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) out.emplace_back(int64_t{1} << i, counts_[i]);
  }
  return out;
}

}  // namespace simgraph
