#ifndef SIMGRAPH_UTIL_TIMESERIES_H_
#define SIMGRAPH_UTIL_TIMESERIES_H_

/// Windowed time-series telemetry.
///
/// The metrics registry (util/metrics.h) is cumulative-since-start, which
/// averages away anything that happens in minute nine of a ten-minute
/// run. This header adds the per-interval view:
///
///   - WindowedHistogram / RateMeter: fixed-capacity ring buffers of
///     per-window aggregates. Memory is constant, rotation is O(1) in
///     the epoch-stamp style of core/propagation's scratch (each slot
///     carries the window index it belongs to; advancing stamps and
///     clears only the slots being opened, never the samples already
///     recorded).
///   - TimeseriesRecorder: a background thread that closes a window
///     every `interval_ms`, diffs the global metrics registry against
///     the previous window (counter deltas, per-window histogram
///     percentiles from bucket-count deltas), and appends one versioned
///     NDJSON record per window to disk and to an in-memory ring that
///     the serving front-end exposes via the `stats-window` wire op.
///
/// Concurrency contract (telemetry-grade, mirrors util/metrics): Add()
/// may be called from any number of threads; AdvanceTo() must be called
/// from a single rotator thread. All shared state is relaxed atomics, so
/// there are no data races, but a sample racing a rotation may be
/// attributed to the adjacent window. Readers racing writers see
/// per-field-consistent (not snapshot-consistent) values.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace simgraph {
namespace timeseries {

/// Aggregates of one closed (or still-open) window.
struct WindowStats {
  /// The window index these stats belong to. When a lookup misses (the
  /// window was evicted by ring wraparound, or never opened), this holds
  /// the index actually found in the slot — callers detect eviction by
  /// comparing it with the index they asked for.
  int64_t window = -1;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact extremes; 0 when the window is empty
  double max = 0.0;
  /// Interpolated within the matched power-of-two bucket, exactly like
  /// metrics::LatencyHistogram::Percentile; 0 when the window is empty.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// A ring of per-window histograms sharing metrics::LatencyHistogram's
/// bucket shape (64 powers of two over a 1e-9 base), so any positive
/// quantity fits. Keeps the last `capacity` windows.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(int32_t capacity = kDefaultCapacity);
  ~WindowedHistogram();  // out of line: Slot is an implementation detail
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  static constexpr int32_t kDefaultCapacity = 32;

  /// Records one sample into the currently open window. Thread-safe.
  void Add(double value);

  /// Opens `window`, closing every index in between (they become valid,
  /// empty windows — an idle interval is data, not absence of data).
  /// No-op when `window` <= current_window(). Jumping further than
  /// `capacity` windows evicts the skipped ones. Single-rotator only.
  void AdvanceTo(int64_t window);

  int64_t current_window() const {
    return current_.load(std::memory_order_acquire);
  }
  int32_t capacity() const { return capacity_; }

  /// Stats of one retained window (open or closed). On eviction the
  /// returned .window differs from the request — see WindowStats.
  WindowStats Window(int64_t window) const;
  /// The still-open window's stats so far.
  WindowStats Live() const { return Window(current_window()); }
  /// The most recent `n` closed windows, ascending by index, clipped to
  /// what the ring retains.
  std::vector<WindowStats> LastClosed(int32_t n) const;

 private:
  struct Slot;
  Slot& slot(int64_t window) const;

  const int32_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<int64_t> current_{0};
};

/// A ring of per-window event counts (hits, misses, degradations...).
/// Same rotation contract as WindowedHistogram.
class RateMeter {
 public:
  explicit RateMeter(int32_t capacity = WindowedHistogram::kDefaultCapacity);
  RateMeter(const RateMeter&) = delete;
  RateMeter& operator=(const RateMeter&) = delete;

  /// Adds `delta` events to the currently open window. Thread-safe.
  void Add(int64_t delta = 1);

  /// See WindowedHistogram::AdvanceTo. Single-rotator only.
  void AdvanceTo(int64_t window);

  int64_t current_window() const {
    return current_.load(std::memory_order_acquire);
  }
  int32_t capacity() const { return capacity_; }

  /// Count recorded in `window`; 0 when evicted or never opened.
  int64_t Count(int64_t window) const;
  /// The still-open window's count so far.
  int64_t LiveCount() const { return Count(current_window()); }

 private:
  struct Slot {
    std::atomic<int64_t> window{-1};
    std::atomic<int64_t> count{0};
  };
  Slot& slot(int64_t window) const;

  const int32_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<int64_t> current_{0};
};

/// Snapshots the global metrics registry every `interval_ms`, emitting
/// one Record per window. Counters are reported as per-window deltas,
/// gauges as their value at window close, histograms as per-window
/// count/sum/percentiles derived from bucket-count deltas. Each record
/// is serialized as one versioned JSON object (`{"v":1,...}`) appended
/// as an NDJSON line to `ndjson_path` (when set) and kept in an
/// in-memory ring of the last `ring_capacity` windows.
class TimeseriesRecorder {
 public:
  /// One histogram's activity inside a single window.
  struct HistogramWindow {
    int64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// One closed window.
  struct Record {
    int64_t window = 0;    ///< 0-based window index
    int64_t wall_ms = 0;   ///< wall-clock ms since epoch at window close
    double dt_s = 0.0;     ///< measured (monotonic) window length
    std::map<std::string, int64_t> counters;  ///< per-window deltas
    std::map<std::string, double> gauges;     ///< values at window close
    std::map<std::string, HistogramWindow> histograms;
    std::string json;  ///< the serialized NDJSON line (no trailing '\n')
  };

  struct Options {
    int64_t interval_ms = 1000;
    int32_t ring_capacity = 128;
    /// NDJSON sink; empty keeps records in memory only.
    std::string ndjson_path;
    /// Invoked at the top of every tick, before the registry snapshot,
    /// with the index of the window being closed — the hook where the
    /// serving layer rotates its windowed instruments (AdvanceTo(window
    /// + 1), then read back window `window`) and publishes
    /// `serve.window.*` gauges so they land in this very record. Runs on
    /// the recorder thread.
    std::function<void(int64_t window, double dt_s)> on_rotate;
    /// Invoked with the finished record (percentiles included) — the
    /// hook for drift detection such as the flight-recorder p99 spike
    /// rule. Runs on the recorder thread.
    std::function<void(const Record&)> on_record;
  };

  explicit TimeseriesRecorder(Options options);
  ~TimeseriesRecorder();
  TimeseriesRecorder(const TimeseriesRecorder&) = delete;
  TimeseriesRecorder& operator=(const TimeseriesRecorder&) = delete;

  /// Starts the background thread. Returns false if already running or
  /// interval_ms <= 0. The pre-Start registry state is baselined at
  /// construction, so window 0 covers construction..first-tick.
  bool Start();
  /// Stops and joins the background thread. Does not close a final
  /// window; call Tick() afterwards to capture the tail.
  void Stop();

  /// Closes the current window synchronously (what the background thread
  /// does every interval). Public so tests and benches can drive windows
  /// deterministically without a thread. Serialized internally.
  void Tick();

  /// Number of windows closed so far.
  int64_t windows() const { return windows_.load(std::memory_order_relaxed); }

  /// The most recent `max` records, ascending by window index.
  std::vector<Record> Recent(int32_t max) const;
  /// Same, but just the NDJSON lines (cheap to serve over the wire).
  std::vector<std::string> RecentJson(int32_t max) const;

  const Options& options() const { return options_; }

 private:
  struct PrevState;
  void Loop();

  Options options_;
  std::unique_ptr<PrevState> prev_;
  std::atomic<int64_t> windows_{0};

  std::mutex tick_mu_;     // serializes Tick()
  mutable std::mutex mu_;  // guards ring_
  std::vector<Record> ring_;

  std::mutex thread_mu_;  // guards thread lifecycle
  std::condition_variable cv_;
  std::thread thread_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace timeseries
}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_TIMESERIES_H_
