#ifndef SIMGRAPH_UTIL_STATUS_H_
#define SIMGRAPH_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace simgraph {

/// Error codes for recoverable failures. The library does not use C++
/// exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// A light-weight success-or-error value, modelled on absl::Status.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Callers must check ok() before
/// dereferencing.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Constructs from a non-OK status. Passing an OK status is an internal error.
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace simgraph

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SIMGRAPH_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::simgraph::Status simgraph_status_tmp_ = (expr);   \
    if (!simgraph_status_tmp_.ok()) return simgraph_status_tmp_; \
  } while (false)

#endif  // SIMGRAPH_UTIL_STATUS_H_
