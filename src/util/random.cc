#include "util/random.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace simgraph {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Guard against the (never reachable via SplitMix64, but cheap to exclude)
  // all-zero state in which xoshiro is stuck.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SIMGRAPH_CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SIMGRAPH_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  SIMGRAPH_CHECK_GT(rate, 0.0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

Rng Rng::Fork() { return Rng(NextUint64()); }

ZipfDistribution::ZipfDistribution(int64_t n, double exponent)
    : exponent_(exponent) {
  SIMGRAPH_CHECK_GT(n, 0);
  SIMGRAPH_CHECK_GE(exponent, 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -exponent);
    cdf_[static_cast<size_t>(i)] = acc;
  }
  const double total = acc;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // Guard against rounding.
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

int64_t SamplePowerLaw(Rng& rng, double alpha, int64_t x_min, int64_t x_max) {
  SIMGRAPH_CHECK_GT(x_min, 0);
  SIMGRAPH_CHECK_LE(x_min, x_max);
  if (x_min == x_max) return x_min;
  const double u = rng.NextDouble();
  double x;
  if (alpha == 1.0) {
    // CDF inverse for P(x) ~ 1/x on [x_min, x_max+1).
    x = x_min * std::pow(static_cast<double>(x_max + 1) / x_min, u);
  } else {
    const double a = 1.0 - alpha;
    const double lo = std::pow(static_cast<double>(x_min), a);
    const double hi = std::pow(static_cast<double>(x_max + 1), a);
    x = std::pow(lo + u * (hi - lo), 1.0 / a);
  }
  const int64_t result = static_cast<int64_t>(x);
  return std::clamp(result, x_min, x_max);
}

std::vector<int64_t> SampleWithoutReplacement(Rng& rng, int64_t n, int64_t k) {
  SIMGRAPH_CHECK_GE(k, 0);
  SIMGRAPH_CHECK_LE(k, n);
  // Floyd's algorithm: k iterations, expected O(k) set operations.
  std::unordered_set<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(k));
  std::vector<int64_t> result;
  result.reserve(static_cast<size_t>(k));
  for (int64_t j = n - k; j < n; ++j) {
    const int64_t t = rng.NextInt(0, j);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace simgraph
