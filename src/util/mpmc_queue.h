#ifndef SIMGRAPH_UTIL_MPMC_QUEUE_H_
#define SIMGRAPH_UTIL_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace simgraph {

/// Bounded multi-producer multi-consumer FIFO queue, the backbone of the
/// serving layer's event-ingestion path (src/serve/service.h).
///
/// Every successful Push is assigned a monotonically increasing ticket
/// (0, 1, 2, ...) under the queue lock, so with a single consumer the pop
/// order IS the ticket order — the serving layer uses the ticket as the
/// event sequence number its acknowledgement protocol is built on.
///
/// Push blocks while the queue is full (backpressure), Pop blocks while it
/// is empty. Close() wakes everyone: pending and future pushes fail, pops
/// drain the remaining items and then return nullopt.
template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(int64_t capacity) : capacity_(capacity) {
    if (capacity_ < 1) capacity_ = 1;
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns the
  /// ticket of the pushed element, or nullopt when closed.
  std::optional<uint64_t> Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return closed_ || static_cast<int64_t>(items_.size()) < capacity_;
    });
    if (closed_) return std::nullopt;
    items_.push_back(std::move(value));
    const uint64_t ticket = next_ticket_++;
    lock.unlock();
    not_empty_.notify_one();
    return ticket;
  }

  /// Non-blocking push; fails when full or closed.
  std::optional<uint64_t> TryPush(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || static_cast<int64_t>(items_.size()) >= capacity_) {
      return std::nullopt;
    }
    items_.push_back(std::move(value));
    const uint64_t ticket = next_ticket_++;
    lock.unlock();
    not_empty_.notify_one();
    return ticket;
  }

  /// Blocks until an element is available; nullopt once the queue is
  /// closed AND drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Marks the queue closed and wakes all waiters. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(items_.size());
  }

  int64_t capacity() const { return capacity_; }

  /// Total number of tickets issued so far.
  uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_ticket_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  int64_t capacity_;
  uint64_t next_ticket_ = 0;
  bool closed_ = false;
};

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_MPMC_QUEUE_H_
