#ifndef SIMGRAPH_UTIL_PROM_EXPORT_H_
#define SIMGRAPH_UTIL_PROM_EXPORT_H_

#include <iosfwd>
#include <string>

/// \file
/// Prometheus text exposition (format 0.0.4) for the metrics registry,
/// served live by the `metrics` wire command of simgraph_served (see
/// docs/observability.md for a scrape example).
///
/// Mapping from registry names to Prometheus names:
///   * every character outside [a-zA-Z0-9_:] becomes '_'
///     (`serve.request.seconds` -> `simgraph_serve_request_seconds`);
///   * everything is prefixed `simgraph_`;
///   * counters get the conventional `_total` suffix;
///   * latency histograms expand to `_bucket{le="..."}` series with
///     cumulative counts (always ending in `le="+Inf"`), plus `_sum`
///     and `_count`.
/// The output ends with the OpenMetrics `# EOF` terminator so streaming
/// clients know where the exposition stops.

namespace simgraph {
namespace metrics {

class Registry;

/// Sanitises one registry metric name into a Prometheus metric name
/// (prefix + charset mapping, no type-specific suffix).
std::string PrometheusName(const std::string& name);

/// Writes the whole registry in Prometheus text exposition format,
/// terminated by "# EOF\n".
void WritePrometheusText(const Registry& registry, std::ostream& out);

/// WritePrometheusText into a string.
std::string PrometheusText(const Registry& registry);

}  // namespace metrics
}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_PROM_EXPORT_H_
