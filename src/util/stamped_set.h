#ifndef SIMGRAPH_UTIL_STAMPED_SET_H_
#define SIMGRAPH_UTIL_STAMPED_SET_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace simgraph {

/// A reusable set over a dense integer key space [0, n), cleared in O(1)
/// by bumping a 32-bit epoch instead of touching the backing array: an
/// element is a member iff its stamp equals the current epoch. This is
/// the membership structure behind the allocation-free hot paths
/// (propagation scratch, the SimGraph builder's 2-hop ball): after the
/// backing array has grown to the key-space size once, Clear/Insert/
/// Contains never allocate. The O(n) zero-fill happens only when the
/// epoch wraps around, i.e. once every 2^32 - 1 clears.
class StampedSet {
 public:
  StampedSet() = default;
  explicit StampedSet(size_t n) { Reserve(n); }

  /// Grows the backing array to cover keys [0, n). Never shrinks.
  void Reserve(size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
  }

  /// Empties the set. O(1) except once every 2^32 - 1 calls.
  void Clear() {
    if (epoch_ == std::numeric_limits<uint32_t>::max()) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
      ++epoch_resets_;
    }
    ++epoch_;
  }

  /// Adds `key`; returns true when it was not yet a member.
  /// Precondition: key < capacity (call Reserve first).
  bool Insert(size_t key) {
    if (stamp_[key] == epoch_) return false;
    stamp_[key] = epoch_;
    return true;
  }

  bool Contains(size_t key) const {
    return key < stamp_.size() && stamp_[key] == epoch_;
  }

  size_t capacity() const { return stamp_.size(); }
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(stamp_.capacity() * sizeof(uint32_t));
  }
  /// Number of O(n) wraparound clears performed so far.
  int64_t epoch_resets() const { return epoch_resets_; }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 1;  // 0 is never a valid epoch: fresh stamps are 0
  int64_t epoch_resets_ = 0;
};

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_STAMPED_SET_H_
