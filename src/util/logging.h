#ifndef SIMGRAPH_UTIL_LOGGING_H_
#define SIMGRAPH_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace simgraph {

/// Severity levels for the SIMGRAPH_LOG macro.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Global minimum level below which SIMGRAPH_LOG statements are dropped.
LogLevel MinLogLevel();

/// Sets the global minimum log level; returns the previous one.
LogLevel SetMinLogLevel(LogLevel level);

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression; used for disabled log levels.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace simgraph

#define SIMGRAPH_LOG(level)                                                  \
  (::simgraph::LogLevel::k##level <                                          \
   ::simgraph::internal_logging::MinLogLevel())                              \
      ? (void)0                                                              \
      : ::simgraph::internal_logging::LogMessageVoidify() &                  \
            ::simgraph::internal_logging::LogMessage(                        \
                ::simgraph::LogLevel::k##level, __FILE__, __LINE__)          \
                .stream()

/// Aborts with a message when `condition` does not hold. Active in all build
/// modes: invariants in a data system are not optional.
#define SIMGRAPH_CHECK(condition)                                        \
  (condition) ? (void)0                                                  \
              : ::simgraph::internal_logging::LogMessageVoidify() &      \
                    ::simgraph::internal_logging::LogMessage(            \
                        ::simgraph::LogLevel::kFatal, __FILE__, __LINE__) \
                        .stream()                                        \
                    << "Check failed: " #condition " "

#define SIMGRAPH_CHECK_OP(a, op, b)                             \
  SIMGRAPH_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define SIMGRAPH_CHECK_EQ(a, b) SIMGRAPH_CHECK_OP(a, ==, b)
#define SIMGRAPH_CHECK_NE(a, b) SIMGRAPH_CHECK_OP(a, !=, b)
#define SIMGRAPH_CHECK_LT(a, b) SIMGRAPH_CHECK_OP(a, <, b)
#define SIMGRAPH_CHECK_LE(a, b) SIMGRAPH_CHECK_OP(a, <=, b)
#define SIMGRAPH_CHECK_GT(a, b) SIMGRAPH_CHECK_OP(a, >, b)
#define SIMGRAPH_CHECK_GE(a, b) SIMGRAPH_CHECK_OP(a, >=, b)

/// Aborts when a Status expression is not OK.
#define SIMGRAPH_CHECK_OK(expr)                                   \
  do {                                                            \
    const ::simgraph::Status simgraph_check_ok_s_ = (expr);       \
    SIMGRAPH_CHECK(simgraph_check_ok_s_.ok())                     \
        << simgraph_check_ok_s_.ToString();                       \
  } while (false)

#endif  // SIMGRAPH_UTIL_LOGGING_H_
