#ifndef SIMGRAPH_UTIL_METRICS_H_
#define SIMGRAPH_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

/// \file
/// Process-global metrics: monotonic counters, gauges and fixed-bucket
/// latency histograms, collected behind a single runtime switch and
/// exported as one JSON snapshot. The registry is the quantitative half
/// of the observability layer (trace spans in util/trace.h are the
/// qualitative half); docs/observability.md is the full reference of
/// every name recorded by the library.
///
/// Usage — the macros cache the registry lookup in a function-local
/// static, so the hot path is one relaxed atomic check plus one relaxed
/// atomic add:
///
///   SIMGRAPH_COUNTER_ADD("propagation.updates", result.updates);
///   SIMGRAPH_GAUGE_SET("threadpool.queue_depth", depth);
///   SIMGRAPH_HISTOGRAM_RECORD("propagation.residual", max_delta);
///   { SIMGRAPH_SCOPED_LATENCY("recommend.cf.seconds"); ...; }
///
/// Collection is off by default; it costs one relaxed load per call site
/// when off. Enable per process with the SIMGRAPH_METRICS environment
/// variable (any value but "0"), programmatically with
/// metrics::SetEnabled(true), or via the --metrics-json=PATH flag that
/// every bench binary and simgraph_cli accept. Defining
/// SIMGRAPH_METRICS_DISABLED at compile time removes every macro call
/// site entirely.

namespace simgraph {
namespace metrics {

namespace internal_metrics {
extern std::atomic<bool> g_enabled;
}  // namespace internal_metrics

/// True when metric collection is on (one relaxed atomic load).
inline bool Enabled() {
  return internal_metrics::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off at runtime; returns the previous state.
/// The initial state comes from the SIMGRAPH_METRICS environment
/// variable (default off).
bool SetEnabled(bool enabled);

/// Name of the per-shard variant of a metric in a sharded deployment:
/// ShardMetricName("serve.requests", 3) == "serve.requests.shard3".
/// Shard-labelled names are dynamic, so call sites cache the returned
/// metric reference themselves instead of using the literal-name macros
/// below (see serve/service.cc for the pattern).
std::string ShardMetricName(const std::string& base, int32_t shard);

/// A monotonically increasing counter. Thread-safe; increments from
/// concurrent threads are never lost.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Adds `delta` (>= 0); a no-op while collection is disabled.
  void Add(int64_t delta = 1) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A last-write-wins instantaneous value (queue depth, last build size).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  /// Stores `value`; a no-op while collection is disabled.
  void Set(double value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram for positive measurements (latencies in
/// seconds, frontier sizes, residuals). Buckets are powers of two over a
/// 1e-9 base: bucket i counts samples in (1e-9 * 2^(i-1), 1e-9 * 2^i],
/// bucket 0 catches everything <= 1e-9, the last bucket is unbounded.
/// This spans one nanosecond to ~18e9 seconds, so one shape fits every
/// quantity the library records. Unlike util/histogram's exact
/// sample-storing Histogram this one is lock-free, constant-memory and
/// safe to hammer from many threads; percentiles are interpolated inside
/// the matched bucket and therefore carry at most one octave of error.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr double kBase = 1e-9;

  LatencyHistogram();
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample; a no-op while collection is disabled.
  /// Non-positive samples land in bucket 0.
  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean of the recorded samples; 0 when empty.
  double Mean() const;
  /// Smallest / largest sample seen (exact, not bucketed); 0 when empty.
  double Min() const;
  double Max() const;

  /// Nearest-rank percentile estimate, p in [0, 100]; linearly
  /// interpolated within the matched bucket. Returns 0 when empty.
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }

  /// Count in bucket `i` (upper bound kBase * 2^i), for export.
  int64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `i` (infinity for the last bucket).
  static double BucketUpperBound(int i);

  void Reset();

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-global name -> metric table. Lookups take a mutex, so
/// call sites cache the returned reference (the macros below do this in
/// a function-local static). Returned references stay valid for the
/// lifetime of the process: Reset() zeroes values but never deallocates.
class Registry {
 public:
  /// The singleton used by the whole library.
  static Registry& Global();

  /// Finds or creates the named metric. Creating the same name with two
  /// different types is a programming error (SIMGRAPH_CHECK).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Writes every metric as one JSON object with "counters", "gauges"
  /// and "histograms" sections, names sorted (see docs/observability.md
  /// for the schema). `pretty` false emits the same object with no
  /// whitespace at all — a single line, embeddable in NDJSON replies.
  void WriteJson(std::ostream& out, bool pretty) const;
  void WriteJson(std::ostream& out) const { WriteJson(out, true); }

  /// WriteJson to `path`; fails with kUnavailable when the file cannot
  /// be opened.
  Status WriteJsonFile(const std::string& path) const;

  /// WriteJson to `path` via a `path + ".tmp"` sibling and an atomic
  /// rename, so a reader tailing the file never observes a torn
  /// (partially written) snapshot. The temp file lands in the same
  /// directory, which keeps the rename atomic on POSIX filesystems.
  Status WriteJsonFileAtomic(const std::string& path) const;

  /// Visits every registered metric (sorted by name) under the registry
  /// lock; callbacks must not call back into the registry. Null
  /// callbacks skip that section. This is the export hook behind
  /// util/prom_export.h.
  void ForEach(
      const std::function<void(const std::string&, const Counter&)>&
          on_counter,
      const std::function<void(const std::string&, const Gauge&)>& on_gauge,
      const std::function<void(const std::string&, const LatencyHistogram&)>&
          on_histogram) const;

  /// Zeroes every registered metric (values only; references returned by
  /// the accessors remain valid). Intended for tests and bench warm-up.
  void Reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Periodically writes the global registry's JSON snapshot to a file
/// from a background thread, so an external collector can tail live
/// metrics without waiting for process exit (the serving front-end's
/// `stats`/`metrics` commands read the registry directly; this is the
/// file-based counterpart). Start() launches the thread, Stop() (also
/// run by the destructor) performs one final flush and joins. Write
/// failures are logged once per path, not fatal.
class PeriodicFlusher {
 public:
  PeriodicFlusher(std::string path, std::chrono::milliseconds interval);
  ~PeriodicFlusher();

  PeriodicFlusher(const PeriodicFlusher&) = delete;
  PeriodicFlusher& operator=(const PeriodicFlusher&) = delete;

  /// Launches the flusher thread. Idempotent.
  void Start();

  /// Final flush + join. Idempotent.
  void Stop();

  /// Completed flushes so far (tests poll this).
  int64_t flushes() const { return flushes_.load(); }

 private:
  void Loop();

  std::string path_;
  std::chrono::milliseconds interval_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::atomic<int64_t> flushes_{0};
  bool warned_ = false;
};

/// RAII wall-clock timer recording elapsed seconds into a histogram on
/// destruction. Skips the clock entirely when collection is disabled at
/// construction time.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram& histogram)
      : histogram_(Enabled() ? &histogram : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatencyTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Record(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace metrics
}  // namespace simgraph

#define SIMGRAPH_METRICS_CONCAT_INNER(a, b) a##b
#define SIMGRAPH_METRICS_CONCAT(a, b) SIMGRAPH_METRICS_CONCAT_INNER(a, b)

#if defined(SIMGRAPH_METRICS_DISABLED)

#define SIMGRAPH_COUNTER_ADD(name, delta) (void)0
#define SIMGRAPH_GAUGE_SET(name, value) (void)0
#define SIMGRAPH_HISTOGRAM_RECORD(name, value) (void)0
#define SIMGRAPH_SCOPED_LATENCY(name) (void)0

#else

/// Adds `delta` to the counter `name` (string literal).
#define SIMGRAPH_COUNTER_ADD(name, delta)                            \
  do {                                                               \
    static ::simgraph::metrics::Counter& simgraph_metric_ref_ =      \
        ::simgraph::metrics::Registry::Global().counter(name);       \
    simgraph_metric_ref_.Add(delta);                                 \
  } while (false)

/// Sets the gauge `name` to `value`.
#define SIMGRAPH_GAUGE_SET(name, value)                              \
  do {                                                               \
    static ::simgraph::metrics::Gauge& simgraph_metric_ref_ =        \
        ::simgraph::metrics::Registry::Global().gauge(name);         \
    simgraph_metric_ref_.Set(value);                                 \
  } while (false)

/// Records one sample into the histogram `name`.
#define SIMGRAPH_HISTOGRAM_RECORD(name, value)                         \
  do {                                                                 \
    static ::simgraph::metrics::LatencyHistogram& simgraph_metric_ref_ = \
        ::simgraph::metrics::Registry::Global().histogram(name);       \
    simgraph_metric_ref_.Record(value);                                \
  } while (false)

/// Times the enclosing scope into the histogram `name` (seconds).
#define SIMGRAPH_SCOPED_LATENCY(name)                                     \
  static ::simgraph::metrics::LatencyHistogram&                           \
      SIMGRAPH_METRICS_CONCAT(simgraph_latency_hist_, __LINE__) =         \
          ::simgraph::metrics::Registry::Global().histogram(name);        \
  ::simgraph::metrics::ScopedLatencyTimer SIMGRAPH_METRICS_CONCAT(        \
      simgraph_latency_timer_, __LINE__)(                                 \
      SIMGRAPH_METRICS_CONCAT(simgraph_latency_hist_, __LINE__))

#endif  // SIMGRAPH_METRICS_DISABLED

#endif  // SIMGRAPH_UTIL_METRICS_H_
