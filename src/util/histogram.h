#ifndef SIMGRAPH_UTIL_HISTOGRAM_H_
#define SIMGRAPH_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace simgraph {

/// Accumulates scalar samples and reports count/mean/percentiles. Used by
/// the analysis module and the evaluation harness for distribution plots
/// (Figures 1-5 of the paper).
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double sum() const { return sum_; }
  /// Mean of the samples; 0 when empty.
  double Mean() const;
  double Min() const;
  double Max() const;
  /// p in [0, 100]; rank-interpolated percentile. Returns a quiet NaN
  /// when the histogram is empty — callers that cannot tolerate NaN
  /// should check count() first. Min()/Max() still require samples.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// All samples in insertion order (for custom bucketing).
  const std::vector<double>& samples() const { return samples_; }

 private:
  void SortIfNeeded() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// A named value bucket, e.g. "2-5" -> 1234.
struct Bucket {
  std::string label;
  int64_t count = 0;
};

/// Buckets integer samples into fixed ranges given by their upper bounds.
/// Bounds must be strictly increasing; a final overflow bucket ("N+")
/// catches the rest. Matches the x-axes of Figures 2-4.
class BucketedCounter {
 public:
  /// `upper_bounds` holds inclusive upper bounds, e.g. {0, 1, 5, 50, 200, 500}
  /// yields buckets 0, 1, 2-5, 6-50, 51-200, 201-500, 500+.
  explicit BucketedCounter(std::vector<int64_t> upper_bounds);

  void Add(int64_t value);
  void AddCount(int64_t value, int64_t count);

  /// The labelled buckets with their accumulated counts.
  std::vector<Bucket> buckets() const;

  int64_t total() const { return total_; }

 private:
  std::vector<int64_t> upper_bounds_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Counts samples in logarithmic bins (1, 2, 4, 8, ...); used for power-law
/// distribution plots on log-log axes.
class LogBinnedCounter {
 public:
  LogBinnedCounter() = default;

  /// Adds a sample; values < 1 are clamped into the first bin.
  void Add(int64_t value);

  /// Returns (bin_lower_bound, count) pairs for non-empty bins in order.
  std::vector<std::pair<int64_t, int64_t>> bins() const;

  int64_t total() const { return total_; }

 private:
  std::vector<int64_t> counts_;  // counts_[i] covers [2^i, 2^(i+1)).
  int64_t total_ = 0;
};

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_HISTOGRAM_H_
