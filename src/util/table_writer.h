#ifndef SIMGRAPH_UTIL_TABLE_WRITER_H_
#define SIMGRAPH_UTIL_TABLE_WRITER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace simgraph {

/// Collects rows of string cells and renders them either as an aligned
/// ASCII table (for stdout) or as CSV (for plotting scripts). Every bench
/// binary reports its table/figure through this class so output is uniform.
class TableWriter {
 public:
  /// `title` is printed above the table, e.g. "Table 4: SimGraph characteristics".
  explicit TableWriter(std::string title);

  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row. Row width must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with %g / integer formatting.
  static std::string Cell(int64_t v);
  static std::string Cell(uint64_t v);
  static std::string Cell(int v);
  static std::string Cell(double v);
  static std::string Cell(const std::string& v) { return v; }

  /// Renders an aligned, human-readable table.
  std::string ToAscii() const;

  /// Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string ToCsv() const;

  /// Prints the ASCII rendering to `os` followed by a blank line.
  void Print(std::ostream& os) const;

  const std::string& title() const { return title_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_TABLE_WRITER_H_
