#ifndef SIMGRAPH_UTIL_NET_H_
#define SIMGRAPH_UTIL_NET_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace simgraph {
namespace net {

/// Shared loopback-socket plumbing for every TCP front door in the tree
/// (serve::TcpServer, the replication fanout/client, tests). Everything
/// binds 127.0.0.1 only — nothing in this repo listens on external
/// interfaces.

/// Creates a listening TCP socket on 127.0.0.1:port and returns its fd.
/// port 0 asks the kernel for an ephemeral port; `*bound_port` always
/// receives the port actually bound (read back via getsockname), which
/// is how every test and smoke discovers where to connect. A non-zero
/// port that races another process (busy CI runners) is retried on
/// EADDRINUSE with a short backoff before giving up.
StatusOr<int> ListenLoopback(uint16_t port, uint16_t* bound_port,
                             int max_attempts = 5);

/// Connects to 127.0.0.1:port. When retry_timeout_ms > 0, ECONNREFUSED
/// is retried with a short backoff until the deadline — a just-forked
/// server may not have reached listen() yet.
StatusOr<int> ConnectLoopback(uint16_t port, int64_t retry_timeout_ms = 0);

/// Sends the whole buffer (EINTR-safe, MSG_NOSIGNAL). False on any
/// other error — including a send timeout if SO_SNDTIMEO is set.
bool SendAll(int fd, const void* data, size_t size);

/// Receives exactly `size` bytes. False on EOF or any error — including
/// a receive timeout if SO_RCVTIMEO is set.
bool RecvAll(int fd, void* data, size_t size);

/// Sets SO_RCVTIMEO / SO_SNDTIMEO (0 = blocking forever).
void SetRecvTimeout(int fd, int64_t millis);
void SetSendTimeout(int fd, int64_t millis);

/// True when the last failed send/recv was a timeout (EAGAIN /
/// EWOULDBLOCK) rather than a dead peer. Callers that set socket
/// timeouts use this to tell "slow" from "gone".
bool LastErrorWasTimeout();

}  // namespace net
}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_NET_H_
