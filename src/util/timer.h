#ifndef SIMGRAPH_UTIL_TIMER_H_
#define SIMGRAPH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace simgraph {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  /// Starts the timer immediately.
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer from zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in seconds as a short human-readable string
/// ("413us", "2.1ms", "3.42s", "1.2h").
std::string FormatDuration(double seconds);

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_TIMER_H_
