#ifndef SIMGRAPH_UTIL_THREAD_POOL_H_
#define SIMGRAPH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace simgraph {

/// Fixed-size worker pool. The paper parallelises SimGraph construction and
/// message scoring over 70 cores; we provide the same structure and scale it
/// to whatever the host offers.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1; 0 means hardware concurrency).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling pool worker in [0, num_threads()), or -1 when the
  /// caller is not a pool worker. Tasks running on the same worker execute
  /// sequentially, so per-worker state indexed by this (e.g. a
  /// PropagationScratch per worker) needs no synchronisation.
  static int CurrentWorkerIndex();

 private:
  // A queued task plus its enqueue instant; the timestamp is only taken
  // (and queue-wait latency only recorded) while metrics collection is
  // enabled, so the disabled path never touches the clock.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;  // queued + running tasks, guarded by mu_
  bool shutdown_ = false;
};

/// Splits [0, n) into roughly equal chunks and runs `fn(begin, end)` for each
/// chunk on the pool, blocking until all chunks finish. With a single worker
/// (or n small) the iteration order is deterministic.
void ParallelFor(ThreadPool& pool, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_THREAD_POOL_H_
