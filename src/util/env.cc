#include "util/env.h"

#include <cstdlib>

namespace simgraph {

int64_t GetEnvInt64(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return default_value;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return default_value;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) return default_value;
  return v;
}

}  // namespace simgraph
