#ifndef SIMGRAPH_UTIL_TRACE_H_
#define SIMGRAPH_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/status.h"

/// \file
/// Scoped trace spans with Chrome trace-event export. Each span records
/// a begin/end pair on a per-thread buffer; Export() merges all buffers
/// into a chrome://tracing compatible JSON file, so a bench run can be
/// opened as a flame chart (see docs/observability.md for the worked
/// example and the span taxonomy).
///
///   {
///     SIMGRAPH_TRACE_SPAN("SimGraph::Build", "build");
///     ...  // everything in this scope shows as one slice
///   }
///   SIMGRAPH_CHECK_OK(simgraph::trace::Export("/tmp/trace.json"));
///
/// Tracing is off by default; a disabled span costs one relaxed atomic
/// load and touches no clock. Enable per process with the SIMGRAPH_TRACE
/// environment variable (any value but "0"), programmatically with
/// trace::SetEnabled(true), or via the --trace-json=PATH flag accepted
/// by every bench binary and simgraph_cli. Defining
/// SIMGRAPH_TRACE_DISABLED at compile time removes every macro call
/// site entirely.
///
/// ## Request-scoped tracing
///
/// The serving path additionally threads a 64-bit request id through
/// every stage of a request, across threads, so one request renders as
/// one connected tree in chrome://tracing (async-nestable events on a
/// per-request track). A RequestScope opens the request on the handling
/// thread; every TraceSpan constructed while a recording scope is
/// active attaches to its request id. Work handed to another thread
/// (e.g. across the ingestion queue) re-attaches with the adopting
/// RequestScope constructor, and stages whose start predates the
/// handling thread (queue wait) are recorded with RecordRequestSpan.
///
///   trace::RequestScope scope("request/recommend");
///   {
///     SIMGRAPH_TRACE_SPAN("request/cache_lookup", "serve");  // child
///   }
///
/// A RequestScope also collects a per-stage latency breakdown (one
/// entry per child span closed on the same thread) and, when the
/// slow-request threshold is set (SIMGRAPH_SLOW_REQUEST_US or
/// SetSlowRequestThresholdUs), logs requests exceeding it as one
/// structured JSON line via util/logging. Stage collection is active
/// whenever tracing is on or the slow-request threshold is set;
/// otherwise a RequestScope costs one id increment and no clock reads.
///
/// Export drops request-scoped child events whose request never
/// recorded a root span (e.g. tracing was toggled on mid-request), so
/// the exported file never contains a dangling request id.

namespace simgraph {
namespace trace {

namespace internal_trace {
extern std::atomic<bool> g_enabled;
}  // namespace internal_trace

/// True when span collection is on (one relaxed atomic load).
inline bool Enabled() {
  return internal_trace::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off at runtime; returns the previous state.
/// The initial state comes from the SIMGRAPH_TRACE environment variable
/// (default off).
bool SetEnabled(bool enabled);

/// Records a zero-duration instant event (chrome://tracing draws a
/// vertical tick), e.g. one propagation iteration boundary.
void Instant(const char* name, const char* category = "app");

/// Number of events buffered so far across all threads.
int64_t NumBufferedEvents();

/// Discards every buffered event (thread ids are retained).
void Clear();

/// Writes all buffered events as Chrome trace JSON:
///   {"traceEvents": [{"name": ..., "cat": ..., "ph": "X",
///                     "ts": <us>, "dur": <us>, "pid": 1, "tid": N}, ...],
///    "displayTimeUnit": "ms"}
/// Timestamps are microseconds on a process-wide monotonic clock.
/// Request-scoped spans are written as async-nestable "b"/"e" pairs on
/// the "request" category with the request id as the event id; child
/// events whose request id has no recorded root span are dropped.
void WriteJson(std::ostream& out);

/// WriteJson to `path`; fails with kIoError when the file cannot be
/// written. The buffer is left intact (call Clear() to start over).
Status Export(const std::string& path);

/// Microseconds since the process trace epoch (the clock WriteJson
/// timestamps are on). Use with RecordRequestSpan for stages whose
/// start happened on another thread.
int64_t NowMicros();

/// Allocates a fresh nonzero request id (process-monotonic).
uint64_t NewRequestId();

class RequestScope;

/// The RequestScope governing the calling thread, or nullptr outside any
/// request. Passive nested scopes are transparent: this always returns
/// the scope that owns (or adopted) the request. Use it to carry the
/// request id across an explicit handoff (e.g. into a queue item).
RequestScope* CurrentScope();

/// Request-scoped spans: threshold (microseconds) above which a
/// completed RequestScope logs its per-stage breakdown as one JSON line
/// via util/logging. 0 (the default) disables the slow-request log. The
/// initial value comes from SIMGRAPH_SLOW_REQUEST_US. Returns the
/// previous threshold.
int64_t SetSlowRequestThresholdUs(int64_t threshold_us);
int64_t SlowRequestThresholdUs();

/// Forces owning RequestScopes to collect per-stage breakdowns (and take
/// the scope clock) even while tracing and the slow-request log are both
/// off — the hook behind the serving flight recorder, which wants stage
/// data for every request it might retain. Returns the previous value.
bool SetForceStageCollection(bool force);
bool ForceStageCollection();

/// Records a span with explicit timing attached to `request_id` — for
/// stages measured across threads, e.g. the queue-wait between a
/// producer's enqueue and the applier's dequeue. A no-op while tracing
/// is disabled or `request_id` is 0. Like a child TraceSpan, the event
/// is dropped at export time if the request never recorded a root span.
void RecordRequestSpan(const char* name, const char* category,
                       int64_t start_us, int64_t dur_us,
                       uint64_t request_id);

/// One entry of a request's per-stage latency breakdown.
struct StageLatency {
  const char* name;  // the child span's name (a string literal)
  int64_t micros;
};

/// RAII request context for one served request.
///
/// The owning form (`adopt_id` == 0) allocates a new request id, makes
/// it current on this thread, records the root span named `op` on
/// destruction, and — when the slow-request threshold is set — logs the
/// per-stage breakdown of requests that exceeded it. A RequestScope
/// constructed while another scope is already current on the thread is
/// passive: the outer scope keeps owning the request (so a service-level
/// scope nests cleanly under a front-end scope).
///
/// The adopting form (`adopt_id` != 0) re-attaches work running on a
/// different thread (e.g. the ingestion applier) to an existing
/// request: child spans record under `adopt_id`, but no root span and
/// no slow-request log are emitted. `adopt_recorded` must say whether
/// the originating scope was recording (carried alongside the id, e.g.
/// through the ingestion queue) so a child span never records under a
/// request whose root was dropped.
///
/// `op` (and attribute keys) must be string literals.
class RequestScope {
 public:
  static constexpr int kMaxStages = 16;
  static constexpr int kMaxAttributes = 4;

  explicit RequestScope(const char* op, uint64_t adopt_id = 0,
                        bool adopt_recorded = false);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  uint64_t request_id() const { return id_; }
  /// True when this scope owns the request (allocated its id).
  bool owner() const { return owner_; }
  /// True when child spans record trace events under this request.
  bool recording() const { return recording_; }
  /// True when child spans feed the per-stage breakdown (tracing on or
  /// slow-request threshold set).
  bool collecting() const { return collecting_; }

  /// Renames the root span; call after the op becomes known (a wire
  /// request's op is only known once its line is parsed — inside the
  /// scope).
  void set_op(const char* op) { op_ = op; }

  /// Attaches a key/value to the slow-request log line (e.g. the user
  /// id). At most kMaxAttributes stick; extras are dropped.
  void SetAttribute(const char* key, int64_t value);

  /// Stages recorded so far by child spans on this thread.
  int num_stages() const { return num_stages_; }
  const StageLatency& stage(int i) const { return stages_[i]; }

  /// Microseconds since the scope opened; 0 when no clock was taken
  /// (neither tracing nor the slow-request log active).
  int64_t ElapsedUs() const;

 private:
  friend class TraceSpan;
  void AddStage(const char* name, int64_t micros);

  const char* op_ = nullptr;
  uint64_t id_ = 0;
  bool owner_ = false;
  bool passive_ = false;
  bool recording_ = false;
  bool collecting_ = false;
  int64_t start_us_ = -1;
  RequestScope* prev_ = nullptr;
  int num_stages_ = 0;
  StageLatency stages_[kMaxStages];
  int num_attributes_ = 0;
  struct Attribute {
    const char* key;
    int64_t value;
  } attributes_[kMaxAttributes];
};

/// RAII complete-event span: records [construction, destruction) under
/// `name` on the calling thread's buffer. `name` and `category` must
/// outlive the span — pass string literals. A span constructed while
/// tracing is disabled stays inert even if tracing is enabled before it
/// closes (and vice versa), so toggling mid-span never produces a
/// half-recorded event. While a RequestScope is current on the thread,
/// the span additionally attaches to its request id (when recording)
/// and feeds its per-stage breakdown (when collecting).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "app");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  int64_t start_us_;
  uint64_t request_id_;
  RequestScope* scope_;
  bool active_;
  bool collect_;
};

}  // namespace trace
}  // namespace simgraph

#define SIMGRAPH_TRACE_CONCAT_INNER(a, b) a##b
#define SIMGRAPH_TRACE_CONCAT(a, b) SIMGRAPH_TRACE_CONCAT_INNER(a, b)

#if defined(SIMGRAPH_TRACE_DISABLED)

#define SIMGRAPH_TRACE_SPAN(...) (void)0
#define SIMGRAPH_TRACE_INSTANT(...) (void)0

#else

/// Opens a span covering the enclosing scope: name, optional category.
#define SIMGRAPH_TRACE_SPAN(...)                              \
  ::simgraph::trace::TraceSpan SIMGRAPH_TRACE_CONCAT(         \
      simgraph_trace_span_, __LINE__)(__VA_ARGS__)

/// Records an instant event: name, optional category.
#define SIMGRAPH_TRACE_INSTANT(...) ::simgraph::trace::Instant(__VA_ARGS__)

#endif  // SIMGRAPH_TRACE_DISABLED

#endif  // SIMGRAPH_UTIL_TRACE_H_
