#ifndef SIMGRAPH_UTIL_TRACE_H_
#define SIMGRAPH_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/status.h"

/// \file
/// Scoped trace spans with Chrome trace-event export. Each span records
/// a begin/end pair on a per-thread buffer; Export() merges all buffers
/// into a chrome://tracing compatible JSON file, so a bench run can be
/// opened as a flame chart (see docs/observability.md for the worked
/// example and the span taxonomy).
///
///   {
///     SIMGRAPH_TRACE_SPAN("SimGraph::Build", "build");
///     ...  // everything in this scope shows as one slice
///   }
///   SIMGRAPH_CHECK_OK(simgraph::trace::Export("/tmp/trace.json"));
///
/// Tracing is off by default; a disabled span costs one relaxed atomic
/// load and touches no clock. Enable per process with the SIMGRAPH_TRACE
/// environment variable (any value but "0"), programmatically with
/// trace::SetEnabled(true), or via the --trace-json=PATH flag accepted
/// by every bench binary and simgraph_cli. Defining
/// SIMGRAPH_TRACE_DISABLED at compile time removes every macro call
/// site entirely.

namespace simgraph {
namespace trace {

namespace internal_trace {
extern std::atomic<bool> g_enabled;
}  // namespace internal_trace

/// True when span collection is on (one relaxed atomic load).
inline bool Enabled() {
  return internal_trace::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off at runtime; returns the previous state.
/// The initial state comes from the SIMGRAPH_TRACE environment variable
/// (default off).
bool SetEnabled(bool enabled);

/// Records a zero-duration instant event (chrome://tracing draws a
/// vertical tick), e.g. one propagation iteration boundary.
void Instant(const char* name, const char* category = "app");

/// Number of events buffered so far across all threads.
int64_t NumBufferedEvents();

/// Discards every buffered event (thread ids are retained).
void Clear();

/// Writes all buffered events as Chrome trace JSON:
///   {"traceEvents": [{"name": ..., "cat": ..., "ph": "X",
///                     "ts": <us>, "dur": <us>, "pid": 1, "tid": N}, ...],
///    "displayTimeUnit": "ms"}
/// Timestamps are microseconds on a process-wide monotonic clock.
void WriteJson(std::ostream& out);

/// WriteJson to `path`; fails with kIoError when the file cannot be
/// written. The buffer is left intact (call Clear() to start over).
Status Export(const std::string& path);

/// RAII complete-event span: records [construction, destruction) under
/// `name` on the calling thread's buffer. `name` and `category` must
/// outlive the span — pass string literals. A span constructed while
/// tracing is disabled stays inert even if tracing is enabled before it
/// closes (and vice versa), so toggling mid-span never produces a
/// half-recorded event.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "app");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  int64_t start_us_;
  bool active_;
};

}  // namespace trace
}  // namespace simgraph

#define SIMGRAPH_TRACE_CONCAT_INNER(a, b) a##b
#define SIMGRAPH_TRACE_CONCAT(a, b) SIMGRAPH_TRACE_CONCAT_INNER(a, b)

#if defined(SIMGRAPH_TRACE_DISABLED)

#define SIMGRAPH_TRACE_SPAN(...) (void)0
#define SIMGRAPH_TRACE_INSTANT(...) (void)0

#else

/// Opens a span covering the enclosing scope: name, optional category.
#define SIMGRAPH_TRACE_SPAN(...)                              \
  ::simgraph::trace::TraceSpan SIMGRAPH_TRACE_CONCAT(         \
      simgraph_trace_span_, __LINE__)(__VA_ARGS__)

/// Records an instant event: name, optional category.
#define SIMGRAPH_TRACE_INSTANT(...) ::simgraph::trace::Instant(__VA_ARGS__)

#endif  // SIMGRAPH_TRACE_DISABLED

#endif  // SIMGRAPH_UTIL_TRACE_H_
