#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace simgraph {
namespace internal_logging {
namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

// Serialises whole log lines so concurrent threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kFatal:
      return 'F';
  }
  return '?';
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

LogLevel SetMinLogLevel(LogLevel level) {
  return g_min_level.exchange(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace simgraph
