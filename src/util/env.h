#ifndef SIMGRAPH_UTIL_ENV_H_
#define SIMGRAPH_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace simgraph {

/// Reads an integer environment variable, returning `default_value` when the
/// variable is unset or unparsable. Experiment binaries use this for scale
/// knobs (e.g. SIMGRAPH_USERS) so the same code runs CI-sized and full-sized.
int64_t GetEnvInt64(const char* name, int64_t default_value);

/// Reads a floating-point environment variable with a default.
double GetEnvDouble(const char* name, double default_value);

/// Reads a string environment variable with a default.
std::string GetEnvString(const char* name, const std::string& default_value);

}  // namespace simgraph

#endif  // SIMGRAPH_UTIL_ENV_H_
