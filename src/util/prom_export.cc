#include "util/prom_export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/metrics.h"

namespace simgraph {
namespace metrics {
namespace {

// Prometheus floats: %.17g round-trips doubles; +Inf spelling per the
// text-format spec.
void WriteNumber(std::ostream& out, double v) {
  if (std::isinf(v)) {
    out << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  if (std::isnan(v)) {
    out << "NaN";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out << buffer;
}

void WriteHelpAndType(std::ostream& out, const std::string& prom_name,
                      const std::string& raw_name, const char* type) {
  out << "# HELP " << prom_name << " simgraph metric " << raw_name << "\n";
  out << "# TYPE " << prom_name << " " << type << "\n";
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "simgraph_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void WritePrometheusText(const Registry& registry, std::ostream& out) {
  registry.ForEach(
      [&out](const std::string& name, const Counter& c) {
        const std::string prom = PrometheusName(name) + "_total";
        WriteHelpAndType(out, prom, name, "counter");
        out << prom << " " << c.value() << "\n";
      },
      [&out](const std::string& name, const Gauge& g) {
        const std::string prom = PrometheusName(name);
        WriteHelpAndType(out, prom, name, "gauge");
        out << prom << " ";
        WriteNumber(out, g.value());
        out << "\n";
      },
      [&out](const std::string& name, const LatencyHistogram& h) {
        const std::string prom = PrometheusName(name);
        WriteHelpAndType(out, prom, name, "histogram");
        // Cumulative bucket counts over the sparse non-empty buckets;
        // the mandatory +Inf bucket always equals the total count.
        int64_t cumulative = 0;
        for (int b = 0; b < LatencyHistogram::kNumBuckets - 1; ++b) {
          const int64_t n = h.bucket_count(b);
          if (n == 0) continue;
          cumulative += n;
          out << prom << "_bucket{le=\"";
          WriteNumber(out, LatencyHistogram::BucketUpperBound(b));
          out << "\"} " << cumulative << "\n";
        }
        out << prom << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        out << prom << "_sum ";
        WriteNumber(out, h.sum());
        out << "\n" << prom << "_count " << h.count() << "\n";
      });
  out << "# EOF\n";
}

std::string PrometheusText(const Registry& registry) {
  std::ostringstream out;
  WritePrometheusText(registry, out);
  return out.str();
}

}  // namespace metrics
}  // namespace simgraph
