#include "util/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

namespace simgraph {
namespace net {
namespace {

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<int> ListenLoopback(uint16_t port, uint16_t* bound_port,
                             int max_attempts) {
  if (max_attempts < 1) max_attempts = 1;
  for (int attempt = 1;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = LoopbackAddr(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
      const int saved = errno;
      ::close(fd);
      // Ephemeral binds (port 0) never collide; an explicit port can,
      // when another process on a busy runner grabbed it between pick
      // and bind. Back off briefly and retry before failing the test.
      if (saved == EADDRINUSE && port != 0 && attempt < max_attempts) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50 * attempt));
        continue;
      }
      errno = saved;
      return Errno(saved == EADDRINUSE ? "bind (EADDRINUSE)" : "bind/listen");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return Errno("getsockname");
    }
    if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
    return fd;
  }
}

StatusOr<int> ConnectLoopback(uint16_t port, int64_t retry_timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    sockaddr_in addr = LoopbackAddr(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    if (saved == ECONNREFUSED && retry_timeout_ms > 0 &&
        std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    errno = saved;
    return Errno("connect");
  }
}

bool SendAll(int fd, const void* data, size_t size) {
  const char* bytes = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RecvAll(int fd, void* data, size_t size) {
  char* bytes = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, bytes + got, size - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

void SetRecvTimeout(int fd, int64_t millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetSendTimeout(int fd, int64_t millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool LastErrorWasTimeout() {
  return errno == EAGAIN || errno == EWOULDBLOCK;
}

}  // namespace net
}  // namespace simgraph
