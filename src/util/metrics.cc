#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>

#include "util/env.h"
#include "util/logging.h"

namespace simgraph {
namespace metrics {

namespace internal_metrics {
std::atomic<bool> g_enabled{GetEnvInt64("SIMGRAPH_METRICS", 0) != 0};
}  // namespace internal_metrics

bool SetEnabled(bool enabled) {
  return internal_metrics::g_enabled.exchange(enabled,
                                              std::memory_order_relaxed);
}

std::string ShardMetricName(const std::string& base, int32_t shard) {
  return base + ".shard" + std::to_string(shard);
}

namespace {

// Atomic min/max via CAS; `first` distinguishes "no sample yet" from a
// genuine 0.0 extremum.
void AtomicMin(std::atomic<double>& target, double value, bool first) {
  double cur = target.load(std::memory_order_relaxed);
  while ((first || value < cur) &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    first = false;
  }
}

void AtomicMax(std::atomic<double>& target, double value, bool first) {
  double cur = target.load(std::memory_order_relaxed);
  while ((first || value > cur) &&
         !target.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    first = false;
  }
}

void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

int BucketIndex(double value) {
  if (!(value > LatencyHistogram::kBase)) return 0;
  const int index = static_cast<int>(
      std::ceil(std::log2(value / LatencyHistogram::kBase)));
  return std::clamp(index, 0, LatencyHistogram::kNumBuckets - 1);
}

// Minimal JSON string escaping; metric names are plain identifiers but
// the writer must not silently produce invalid output for odd ones.
void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

// JSON has no Infinity/NaN literals; clamp them to null.
void WriteJsonNumber(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

}  // namespace

LatencyHistogram::LatencyHistogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::Record(double value) {
  if (!Enabled()) return;
  const int64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value, /*first=*/prior == 0);
  AtomicMax(max_, value, /*first=*/prior == 0);
}

double LatencyHistogram::Mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double LatencyHistogram::Min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double LatencyHistogram::Max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double LatencyHistogram::BucketUpperBound(int i) {
  if (i >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return kBase * std::ldexp(1.0, i);
}

double LatencyHistogram::Percentile(double p) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank target, as in util/histogram.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(
                               p / 100.0 * static_cast<double>(n))));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      // Interpolate linearly inside the matched bucket, clamped to the
      // observed extremes so the estimate never exceeds Max().
      const double lo = i == 0 ? 0.0 : kBase * std::ldexp(1.0, i - 1);
      double hi = BucketUpperBound(i);
      if (!std::isfinite(hi)) hi = Max();
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), Min(), Max());
    }
    cumulative += in_bucket;
  }
  return Max();
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// std::map keeps the JSON output sorted and (with node stability) the
// returned references valid forever; the registry is a leaked singleton
// so references also survive static destruction order.
struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
};

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl;
  return *impl;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  SIMGRAPH_CHECK(!i.gauges.contains(name) && !i.histograms.contains(name))
      << "metric '" << name << "' already registered with another type";
  auto& slot = i.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  SIMGRAPH_CHECK(!i.counters.contains(name) && !i.histograms.contains(name))
      << "metric '" << name << "' already registered with another type";
  auto& slot = i.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& Registry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  SIMGRAPH_CHECK(!i.counters.contains(name) && !i.gauges.contains(name))
      << "metric '" << name << "' already registered with another type";
  auto& slot = i.histograms[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void Registry::WriteJson(std::ostream& out, bool pretty) const {
  // Separator strings parameterised on `pretty`: compact mode emits the
  // identical object with all whitespace removed (one NDJSON-safe line).
  const char* open = pretty ? "{\n  " : "{";
  const char* section_sep = pretty ? "},\n  " : "},";
  const char* item_open = pretty ? "\n    " : "";
  const char* item_sep = pretty ? ",\n    " : ",";
  const char* item_close = pretty ? "\n  " : "";
  const char* colon = pretty ? ": " : ":";
  const char* comma = pretty ? ", " : ",";
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  out.precision(15);
  out << open << "\"counters\"" << colon << "{";
  bool first = true;
  for (const auto& [name, c] : i.counters) {
    out << (first ? item_open : item_sep);
    first = false;
    WriteJsonString(out, name);
    out << colon << c->value();
  }
  out << (first ? "" : item_close) << section_sep << "\"gauges\"" << colon
      << "{";
  first = true;
  for (const auto& [name, g] : i.gauges) {
    out << (first ? item_open : item_sep);
    first = false;
    WriteJsonString(out, name);
    out << colon;
    WriteJsonNumber(out, g->value());
  }
  out << (first ? "" : item_close) << section_sep << "\"histograms\""
      << colon << "{";
  first = true;
  for (const auto& [name, h] : i.histograms) {
    out << (first ? item_open : item_sep);
    first = false;
    WriteJsonString(out, name);
    out << colon << "{\"count\"" << colon << h->count() << comma
        << "\"sum\"" << colon;
    WriteJsonNumber(out, h->sum());
    out << comma << "\"mean\"" << colon;
    WriteJsonNumber(out, h->Mean());
    out << comma << "\"min\"" << colon;
    WriteJsonNumber(out, h->Min());
    out << comma << "\"max\"" << colon;
    WriteJsonNumber(out, h->Max());
    out << comma << "\"p50\"" << colon;
    WriteJsonNumber(out, h->p50());
    out << comma << "\"p95\"" << colon;
    WriteJsonNumber(out, h->p95());
    out << comma << "\"p99\"" << colon;
    WriteJsonNumber(out, h->p99());
    out << comma << "\"buckets\"" << colon << "[";
    bool first_bucket = true;
    for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      const int64_t n = h->bucket_count(b);
      if (n == 0) continue;  // sparse export: empty buckets are implicit
      out << (first_bucket ? "" : comma);
      first_bucket = false;
      out << "{\"le\"" << colon;
      WriteJsonNumber(out, LatencyHistogram::BucketUpperBound(b));
      out << comma << "\"count\"" << colon << n << "}";
    }
    out << "]}";
  }
  out << (first ? "" : item_close) << "}" << (pretty ? "\n}\n" : "}");
}

void Registry::ForEach(
    const std::function<void(const std::string&, const Counter&)>&
        on_counter,
    const std::function<void(const std::string&, const Gauge&)>& on_gauge,
    const std::function<void(const std::string&, const LatencyHistogram&)>&
        on_histogram) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  if (on_counter) {
    for (const auto& [name, c] : i.counters) on_counter(name, *c);
  }
  if (on_gauge) {
    for (const auto& [name, g] : i.gauges) on_gauge(name, *g);
  }
  if (on_histogram) {
    for (const auto& [name, h] : i.histograms) on_histogram(name, *h);
  }
}

Status Registry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open metrics output file: " + path);
  }
  WriteJson(out);
  out.flush();
  if (!out) {
    return Status::IoError("failed writing metrics output file: " + path);
  }
  return Status::Ok();
}

Status Registry::WriteJsonFileAtomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  const Status written = WriteJsonFile(tmp);
  if (!written.ok()) return written;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

void Registry::Reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, c] : i.counters) c->Reset();
  for (auto& [name, g] : i.gauges) g->Reset();
  for (auto& [name, h] : i.histograms) h->Reset();
}

PeriodicFlusher::PeriodicFlusher(std::string path,
                                 std::chrono::milliseconds interval)
    : path_(std::move(path)), interval_(interval) {
  if (interval_.count() < 1) interval_ = std::chrono::milliseconds(1);
}

PeriodicFlusher::~PeriodicFlusher() { Stop(); }

void PeriodicFlusher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void PeriodicFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
}

void PeriodicFlusher::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, interval_, [this] { return stopping_; });
    }
    // Atomic temp-file + rename: a collector tailing the snapshot must
    // never read a half-written JSON object mid-flush.
    const Status written = Registry::Global().WriteJsonFileAtomic(path_);
    if (written.ok()) {
      flushes_.fetch_add(1);
    } else if (!warned_) {
      warned_ = true;  // Loop-thread only; one warning per flusher.
      SIMGRAPH_LOG(Warning) << "metrics flush failed: "
                            << written.ToString();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // the pre-join write above was the final flush
  }
}

}  // namespace metrics
}  // namespace simgraph
