#ifndef SIMGRAPH_ANALYSIS_DISTRIBUTION_FIT_H_
#define SIMGRAPH_ANALYSIS_DISTRIBUTION_FIT_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/random.h"

namespace simgraph {

/// Result of fitting a discrete power law P(x) ~ x^(-alpha) for x >= x_min
/// to integer samples (Clauset-Shalizi-Newman style: continuous MLE
/// approximation for alpha plus a Kolmogorov-Smirnov distance).
struct PowerLawFit {
  double alpha = 0.0;
  int64_t x_min = 1;
  /// KS distance between the empirical and fitted CDFs on the tail
  /// x >= x_min; small values (< ~0.1 on decent sample sizes) indicate a
  /// plausible power law.
  double ks_distance = 1.0;
  /// Number of samples in the fitted tail.
  int64_t tail_size = 0;
};

/// Fits alpha by maximum likelihood for the given x_min under the
/// floored-continuous model (each integer sample stands for a continuous
/// value in [x, x+1), so P(X = x) proportional to x^(1-a) - (x+1)^(1-a)),
/// solved numerically by golden-section search on the log-likelihood.
/// Samples below x_min are ignored. Requires at least 2 tail samples.
PowerLawFit FitPowerLaw(const std::vector<int64_t>& samples, int64_t x_min);

/// Scans x_min over the distinct sample values (capped for cost) and
/// returns the fit minimising the KS distance — the CSN recipe.
PowerLawFit FitPowerLawAuto(const std::vector<int64_t>& samples);

/// Average local clustering coefficient over `num_samples` random nodes
/// of the undirected view of `g` (Watts-Strogatz). Degree-0/1 nodes
/// contribute 0. Used with the path length to characterise the
/// small-world property the paper cites (Schnettler 2009): a small world
/// couples short paths with clustering far above the random-graph level.
double SampledClusteringCoefficient(const Digraph& g, int32_t num_samples,
                                    Rng& rng);

}  // namespace simgraph

#endif  // SIMGRAPH_ANALYSIS_DISTRIBUTION_FIT_H_
