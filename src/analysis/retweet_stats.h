#ifndef SIMGRAPH_ANALYSIS_RETWEET_STATS_H_
#define SIMGRAPH_ANALYSIS_RETWEET_STATS_H_

#include <cstdint>
#include <vector>

#include "dataset/dataset.h"
#include "util/histogram.h"

namespace simgraph {

/// Figure 2: tweets bucketed by how often they were retweeted
/// (0, 1, 2-5, 6-50, 51-200, 201-500, 500+).
std::vector<Bucket> RetweetsPerTweetBuckets(const Dataset& dataset);

/// Fraction of tweets never retweeted (the paper reports ~90%).
double FractionNeverRetweeted(const Dataset& dataset);

/// Figure 3 data: for users with >= 1 retweet, a log-binned histogram of
/// their retweet counts, plus mean and median in `mean`/`median`.
struct RetweetsPerUserStats {
  std::vector<std::pair<int64_t, int64_t>> log_bins;
  double mean = 0.0;
  double median = 0.0;
  /// Fraction of users with zero retweets (~ a quarter in the paper).
  double never_retweeted_fraction = 0.0;
};
RetweetsPerUserStats ComputeRetweetsPerUser(const Dataset& dataset);

/// Figure 4: lifetime of each tweet with >= 1 retweet, measured as the
/// span between publication and the last retweet, in hours.
Histogram TweetLifetimesHours(const Dataset& dataset);

/// Fraction of retweeted tweets whose lifetime is below `hours`.
double FractionDeadWithinHours(const Dataset& dataset, double hours);

}  // namespace simgraph

#endif  // SIMGRAPH_ANALYSIS_RETWEET_STATS_H_
