#include "analysis/retweet_stats.h"

#include <algorithm>

#include "util/logging.h"

namespace simgraph {

std::vector<Bucket> RetweetsPerTweetBuckets(const Dataset& dataset) {
  BucketedCounter counter({0, 1, 5, 50, 200, 500});
  for (int32_t c : dataset.RetweetCountPerTweet()) counter.Add(c);
  return counter.buckets();
}

double FractionNeverRetweeted(const Dataset& dataset) {
  if (dataset.num_tweets() == 0) return 0.0;
  int64_t zero = 0;
  for (int32_t c : dataset.RetweetCountPerTweet()) {
    if (c == 0) ++zero;
  }
  return static_cast<double>(zero) /
         static_cast<double>(dataset.num_tweets());
}

RetweetsPerUserStats ComputeRetweetsPerUser(const Dataset& dataset) {
  RetweetsPerUserStats stats;
  const std::vector<int32_t> counts = dataset.RetweetCountPerUser();
  Histogram active;
  LogBinnedCounter bins;
  int64_t zero = 0;
  for (int32_t c : counts) {
    if (c == 0) {
      ++zero;
      continue;
    }
    active.Add(static_cast<double>(c));
    bins.Add(c);
  }
  stats.log_bins = bins.bins();
  stats.mean = active.Mean();
  stats.median = active.count() > 0 ? active.Median() : 0.0;
  stats.never_retweeted_fraction =
      counts.empty() ? 0.0
                     : static_cast<double>(zero) /
                           static_cast<double>(counts.size());
  return stats;
}

Histogram TweetLifetimesHours(const Dataset& dataset) {
  std::vector<Timestamp> last_retweet(dataset.tweets.size(), -1);
  for (const RetweetEvent& e : dataset.retweets) {
    last_retweet[static_cast<size_t>(e.tweet)] =
        std::max(last_retweet[static_cast<size_t>(e.tweet)], e.time);
  }
  Histogram lifetimes;
  for (const Tweet& t : dataset.tweets) {
    const Timestamp last = last_retweet[static_cast<size_t>(t.id)];
    if (last < 0) continue;  // never retweeted
    lifetimes.Add(static_cast<double>(last - t.time) /
                  static_cast<double>(kSecondsPerHour));
  }
  return lifetimes;
}

double FractionDeadWithinHours(const Dataset& dataset, double hours) {
  const Histogram lifetimes = TweetLifetimesHours(dataset);
  if (lifetimes.count() == 0) return 0.0;
  int64_t below = 0;
  for (double h : lifetimes.samples()) {
    if (h < hours) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(lifetimes.count());
}

}  // namespace simgraph
