#include "analysis/distribution_fit.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace simgraph {
namespace {

// Empirical vs fitted CDF distance on the tail x >= x_min.
double KsDistance(const std::vector<int64_t>& tail, double alpha,
                  int64_t x_min) {
  // tail is sorted ascending. Fitted model: a continuous power law on
  // [x_min, inf) floored to integers, so P(X <= x) = 1 - ((x+1)/x_min)^(1-a)
  // — the discrete-correct counterpart of the CSN continuous CDF.
  const double n = static_cast<double>(tail.size());
  double worst = 0.0;
  for (size_t i = 0; i < tail.size(); ++i) {
    // Skip runs of equal values except the last occurrence.
    if (i + 1 < tail.size() && tail[i + 1] == tail[i]) continue;
    const double empirical_cdf = static_cast<double>(i + 1) / n;
    const double fitted_cdf =
        1.0 - std::pow(static_cast<double>(tail[i] + 1) /
                           static_cast<double>(x_min),
                       1.0 - alpha);
    worst = std::max(worst, std::abs(empirical_cdf - fitted_cdf));
  }
  return worst;
}

}  // namespace

PowerLawFit FitPowerLaw(const std::vector<int64_t>& samples, int64_t x_min) {
  SIMGRAPH_CHECK_GE(x_min, 1);
  PowerLawFit fit;
  fit.x_min = x_min;
  std::vector<int64_t> tail;
  for (int64_t x : samples) {
    if (x >= x_min) tail.push_back(x);
  }
  if (tail.size() < 2) return fit;  // alpha 0, ks 1: no usable tail
  std::sort(tail.begin(), tail.end());

  // Exact MLE under the floored-continuous model:
  //   P(X = x) = (x^(1-a) - (x+1)^(1-a)) / x_min^(1-a),
  // maximised over alpha by golden-section search (the log-likelihood is
  // unimodal in alpha).
  const auto log_likelihood = [&](double a) {
    const double one_minus_a = 1.0 - a;
    double ll = 0.0;
    for (int64_t x : tail) {
      const double p = std::pow(static_cast<double>(x), one_minus_a) -
                       std::pow(static_cast<double>(x) + 1.0, one_minus_a);
      ll += std::log(std::max(p, 1e-300));
    }
    ll -= static_cast<double>(tail.size()) * one_minus_a *
          std::log(static_cast<double>(x_min));
    return ll;
  };
  double lo = 1.0001;
  double hi = 8.0;
  constexpr double kGolden = 0.6180339887498949;
  double a = hi - kGolden * (hi - lo);
  double b = lo + kGolden * (hi - lo);
  double fa = log_likelihood(a);
  double fb = log_likelihood(b);
  for (int iter = 0; iter < 80 && hi - lo > 1e-7; ++iter) {
    if (fa > fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - kGolden * (hi - lo);
      fa = log_likelihood(a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + kGolden * (hi - lo);
      fb = log_likelihood(b);
    }
  }
  fit.alpha = (lo + hi) / 2.0;
  fit.tail_size = static_cast<int64_t>(tail.size());
  fit.ks_distance = KsDistance(tail, fit.alpha, x_min);
  return fit;
}

PowerLawFit FitPowerLawAuto(const std::vector<int64_t>& samples) {
  // Candidate x_min values: distinct sample values, capped at 50 distinct
  // candidates for cost (CSN scan).
  std::vector<int64_t> candidates;
  {
    std::unordered_set<int64_t> seen;
    for (int64_t x : samples) {
      if (x >= 1) seen.insert(x);
    }
    candidates.assign(seen.begin(), seen.end());
    std::sort(candidates.begin(), candidates.end());
    if (candidates.size() > 50) candidates.resize(50);
  }
  PowerLawFit best;
  for (int64_t x_min : candidates) {
    const PowerLawFit fit = FitPowerLaw(samples, x_min);
    if (fit.tail_size >= 10 && fit.ks_distance < best.ks_distance) {
      best = fit;
    }
  }
  if (best.tail_size == 0 && !candidates.empty()) {
    best = FitPowerLaw(samples, candidates.front());
  }
  return best;
}

double SampledClusteringCoefficient(const Digraph& g, int32_t num_samples,
                                    Rng& rng) {
  if (g.num_nodes() == 0) return 0.0;
  // When the budget covers the graph, evaluate every node exactly;
  // otherwise sample uniformly.
  const bool exhaustive = num_samples >= g.num_nodes();
  const int32_t n = exhaustive ? g.num_nodes() : num_samples;
  double total = 0.0;
  for (int32_t s = 0; s < n; ++s) {
    const NodeId u =
        exhaustive ? static_cast<NodeId>(s)
                   : static_cast<NodeId>(rng.NextBounded(
                         static_cast<uint64_t>(g.num_nodes())));
    // Undirected neighbourhood of u.
    std::vector<NodeId> nbrs;
    nbrs.insert(nbrs.end(), g.OutNeighbors(u).begin(),
                g.OutNeighbors(u).end());
    nbrs.insert(nbrs.end(), g.InNeighbors(u).begin(), g.InNeighbors(u).end());
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    if (nbrs.size() < 2) continue;
    // Count undirected links among neighbours.
    int64_t links = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j]) || g.HasEdge(nbrs[j], nbrs[i])) {
          ++links;
        }
      }
    }
    const double possible = static_cast<double>(nbrs.size()) *
                            static_cast<double>(nbrs.size() - 1) / 2.0;
    total += static_cast<double>(links) / possible;
  }
  return total / static_cast<double>(n);
}

}  // namespace simgraph
