#include "analysis/homophily.h"

#include <algorithm>
#include <unordered_map>

#include "graph/bfs.h"
#include "util/logging.h"

namespace simgraph {

HomophilyStudy RunHomophilyStudy(const Dataset& dataset,
                                 const ProfileStore& profiles,
                                 const HomophilyStudyOptions& options) {
  HomophilyStudy study;
  Rng rng(options.seed);

  // Candidate probe pool: users with enough retweets.
  std::vector<UserId> pool;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (profiles.ProfileSize(u) >= options.min_retweets) pool.push_back(u);
  }
  if (pool.empty()) return study;
  std::vector<UserId> probes;
  if (static_cast<int64_t>(pool.size()) <= options.num_probe_users) {
    probes = pool;
  } else {
    for (int64_t idx : SampleWithoutReplacement(
             rng, static_cast<int64_t>(pool.size()), options.num_probe_users)) {
      probes.push_back(pool[static_cast<size_t>(idx)]);
    }
  }

  // Accumulators: per distance (index max_distance+1 = impossible).
  const size_t kImpossible = static_cast<size_t>(options.max_distance) + 1;
  std::vector<int64_t> pair_count(kImpossible + 1, 0);
  std::vector<double> sim_sum(kImpossible + 1, 0.0);
  double total_sim = 0.0;
  int64_t total_pairs = 0;

  // Table 3 accumulators.
  std::vector<double> rank_distance_sum(static_cast<size_t>(options.top_n),
                                        0.0);
  std::vector<int64_t> rank_reachable(static_cast<size_t>(options.top_n), 0);
  // distance 1..4 percent distribution per rank.
  std::vector<std::vector<int64_t>> rank_distance_hist(
      static_cast<size_t>(options.top_n), std::vector<int64_t>(4, 0));
  int64_t top_n_total = 0;
  int64_t top_n_within_two = 0;

  for (UserId u : probes) {
    // Similarity to every co-retweeting user.
    std::vector<std::pair<UserId, double>> sims = profiles.SimilaritiesOf(u);
    if (sims.empty()) continue;
    // Hop distances from u (out-direction: followees of followees ...).
    const std::vector<int32_t> dist = BfsDistancesBounded(
        dataset.follow_graph, u, TraversalDirection::kOut,
        options.max_distance);

    for (const auto& [v, sim] : sims) {
      const int32_t d = dist[static_cast<size_t>(v)];
      const size_t slot = d <= 0 ? kImpossible : static_cast<size_t>(d);
      ++pair_count[slot];
      sim_sum[slot] += sim;
      total_sim += sim;
      ++total_pairs;
    }

    // Top-N most similar users of u.
    const int64_t n =
        std::min<int64_t>(options.top_n, static_cast<int64_t>(sims.size()));
    std::partial_sort(sims.begin(), sims.begin() + n, sims.end(),
                      [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    for (int64_t r = 0; r < n; ++r) {
      const UserId v = sims[static_cast<size_t>(r)].first;
      const int32_t d = dist[static_cast<size_t>(v)];
      ++top_n_total;
      if (d > 0 && d <= 2) ++top_n_within_two;
      if (d > 0) {
        rank_distance_sum[static_cast<size_t>(r)] += d;
        ++rank_reachable[static_cast<size_t>(r)];
        if (d <= 4) {
          ++rank_distance_hist[static_cast<size_t>(r)]
                              [static_cast<size_t>(d - 1)];
        }
      }
    }
  }

  // Assemble Table 2 rows.
  for (size_t slot = 1; slot <= kImpossible; ++slot) {
    SimilarityByDistanceRow row;
    row.distance =
        slot == kImpossible ? -1 : static_cast<int32_t>(slot);
    row.num_pairs = pair_count[slot];
    row.percentage = total_pairs > 0
                         ? 100.0 * static_cast<double>(pair_count[slot]) /
                               static_cast<double>(total_pairs)
                         : 0.0;
    row.mean_similarity =
        pair_count[slot] > 0
            ? sim_sum[slot] / static_cast<double>(pair_count[slot])
            : 0.0;
    study.similarity_by_distance.push_back(row);
  }
  study.overall_mean_similarity =
      total_pairs > 0 ? total_sim / static_cast<double>(total_pairs) : 0.0;

  // Assemble Table 3 rows.
  for (int32_t r = 0; r < options.top_n; ++r) {
    TopRankDistanceRow row;
    row.rank = r + 1;
    const int64_t reach = rank_reachable[static_cast<size_t>(r)];
    row.avg_distance =
        reach > 0 ? rank_distance_sum[static_cast<size_t>(r)] /
                        static_cast<double>(reach)
                  : 0.0;
    for (int32_t d = 0; d < 4; ++d) {
      row.distance_percent.push_back(
          reach > 0 ? 100.0 *
                          static_cast<double>(
                              rank_distance_hist[static_cast<size_t>(r)]
                                                [static_cast<size_t>(d)]) /
                          static_cast<double>(reach)
                    : 0.0);
    }
    study.top_rank_distance.push_back(row);
  }
  study.top_n_within_two_hops =
      top_n_total > 0 ? static_cast<double>(top_n_within_two) /
                            static_cast<double>(top_n_total)
                      : 0.0;
  return study;
}

}  // namespace simgraph
