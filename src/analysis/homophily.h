#ifndef SIMGRAPH_ANALYSIS_HOMOPHILY_H_
#define SIMGRAPH_ANALYSIS_HOMOPHILY_H_

#include <cstdint>
#include <vector>

#include "core/similarity.h"
#include "dataset/dataset.h"
#include "util/random.h"

namespace simgraph {

/// Parameters of the Section 3.2 homophily study.
struct HomophilyStudyOptions {
  /// Number of probe users sampled (the paper uses 2000).
  int32_t num_probe_users = 500;
  /// Probe users must have retweeted at least this many posts.
  int32_t min_retweets = 5;
  /// Top-N size for the rank-vs-distance table (the paper uses 5).
  int32_t top_n = 5;
  /// Distances above this are folded into the last row.
  int32_t max_distance = 6;
  uint64_t seed = 7;
};

/// One row of Table 2: users-pairs with sim > 0 at a given distance.
struct SimilarityByDistanceRow {
  /// Hop distance in the follow graph; -1 encodes "Impossible"
  /// (similar but unreachable).
  int32_t distance = 0;
  int64_t num_pairs = 0;
  double percentage = 0.0;
  double mean_similarity = 0.0;
};

/// One row of Table 3: where the rank-r most similar user sits in the
/// network.
struct TopRankDistanceRow {
  int32_t rank = 0;  // 1-based
  double avg_distance = 0.0;
  /// distribution[d-1] = % of rank-r users at distance d (d = 1..4);
  /// unreachable users are excluded from the distribution.
  std::vector<double> distance_percent;
};

/// Results of the homophily study.
struct HomophilyStudy {
  std::vector<SimilarityByDistanceRow> similarity_by_distance;  // Table 2
  std::vector<TopRankDistanceRow> top_rank_distance;            // Table 3
  /// Mean similarity over all positive pairs (the paper's 0.0019 baseline).
  double overall_mean_similarity = 0.0;
  /// Fraction of the Top-N most-similar users found within distance <= 2.
  double top_n_within_two_hops = 0.0;
};

/// Runs the study: samples active probe users, computes their similarity
/// to every co-retweeting user, and cross-tabulates similarity against
/// follow-graph hop distance (out-direction BFS, like "followees of
/// followees").
HomophilyStudy RunHomophilyStudy(const Dataset& dataset,
                                 const ProfileStore& profiles,
                                 const HomophilyStudyOptions& options);

}  // namespace simgraph

#endif  // SIMGRAPH_ANALYSIS_HOMOPHILY_H_
