#include "baselines/graphjet_recommender.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {

GraphJetRecommender::GraphJetRecommender(GraphJetOptions options)
    : options_(options), rng_(options.seed) {}

Status GraphJetRecommender::Train(const Dataset& dataset, int64_t train_end) {
  if (train_end < 0 || train_end > dataset.num_retweets()) {
    return Status::InvalidArgument("train_end out of range");
  }
  tweet_time_.clear();
  tweet_author_.clear();
  for (const Tweet& t : dataset.tweets) {
    tweet_time_.push_back(t.time);
    tweet_author_.push_back(t.author);
  }
  consumed_.assign(static_cast<size_t>(dataset.num_users()), {});
  segments_.clear();

  // GraphJet has no model to fit; "training" just replays the tail of the
  // training stream that falls inside the interaction window (older
  // segments would have been expired anyway).
  const Timestamp split_time =
      train_end > 0 ? dataset.retweets[static_cast<size_t>(train_end - 1)].time
                    : 0;
  const Timestamp window_start = split_time - options_.window;
  // Authored tweets inside the window are interactions too.
  for (const Tweet& t : dataset.tweets) {
    if (t.time >= window_start && t.time <= split_time) {
      Ingest(t.author, t.id, t.time);
    }
  }
  for (int64_t i = 0; i < train_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    consumed_[static_cast<size_t>(e.user)].insert(e.tweet);
    if (e.time >= window_start) Ingest(e.user, e.tweet, e.time);
  }
  return Status::Ok();
}

void GraphJetRecommender::Ingest(UserId user, TweetId tweet, Timestamp time) {
  Rotate(time);
  Segment& seg = segments_.back();
  seg.by_user[user].push_back(tweet);
  seg.by_tweet[tweet].push_back(user);
  ++seg.num_edges;
}

void GraphJetRecommender::Rotate(Timestamp now) {
  if (segments_.empty()) {
    Segment seg;
    seg.start = now - now % options_.segment_span;
    segments_.push_back(std::move(seg));
  }
  while (now >= segments_.back().start + options_.segment_span) {
    Segment seg;
    seg.start = segments_.back().start + options_.segment_span;
    segments_.push_back(std::move(seg));
  }
  while (!segments_.empty() &&
         segments_.front().start + options_.segment_span <
             now - options_.window) {
    segments_.pop_front();
  }
}

void GraphJetRecommender::Observe(const RetweetEvent& event) {
  SIMGRAPH_CHECK(!tweet_time_.empty() || tweet_author_.empty())
      << "Train must be called first";
  consumed_[static_cast<size_t>(event.user)].insert(event.tweet);
  Ingest(event.user, event.tweet, event.time);
}

std::vector<ScoredTweet> GraphJetRecommender::Recommend(UserId user,
                                                        Timestamp now,
                                                        int32_t k) {
  SIMGRAPH_TRACE_SPAN("GraphJetRecommender::Recommend", "recommend");
  SIMGRAPH_SCOPED_LATENCY("recommend.graphjet.seconds");
  Rotate(now);

  // Collect u's live interactions as walk starting points.
  std::vector<TweetId> start_tweets;
  for (const Segment& seg : segments_) {
    const auto it = seg.by_user.find(user);
    if (it != seg.by_user.end()) {
      start_tweets.insert(start_tweets.end(), it->second.begin(),
                          it->second.end());
    }
  }
  if (start_tweets.empty()) return {};  // cold user: no walk can start

  // Uniform pick over a tweet's interactors across all segments.
  auto random_interactor = [&](TweetId t) -> UserId {
    int64_t total = 0;
    for (const Segment& seg : segments_) {
      const auto it = seg.by_tweet.find(t);
      if (it != seg.by_tweet.end()) {
        total += static_cast<int64_t>(it->second.size());
      }
    }
    if (total == 0) return kInvalidNode;
    int64_t pick =
        static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(total)));
    for (const Segment& seg : segments_) {
      const auto it = seg.by_tweet.find(t);
      if (it == seg.by_tweet.end()) continue;
      if (pick < static_cast<int64_t>(it->second.size())) {
        return it->second[static_cast<size_t>(pick)];
      }
      pick -= static_cast<int64_t>(it->second.size());
    }
    return kInvalidNode;
  };
  auto random_tweet_of = [&](UserId v) -> TweetId {
    int64_t total = 0;
    for (const Segment& seg : segments_) {
      const auto it = seg.by_user.find(v);
      if (it != seg.by_user.end()) {
        total += static_cast<int64_t>(it->second.size());
      }
    }
    if (total == 0) return kInvalidTweet;
    int64_t pick =
        static_cast<int64_t>(rng_.NextBounded(static_cast<uint64_t>(total)));
    for (const Segment& seg : segments_) {
      const auto it = seg.by_user.find(v);
      if (it == seg.by_user.end()) continue;
      if (pick < static_cast<int64_t>(it->second.size())) {
        return it->second[static_cast<size_t>(pick)];
      }
      pick -= static_cast<int64_t>(it->second.size());
    }
    return kInvalidTweet;
  };

  std::unordered_map<TweetId, int64_t> visits;
  const auto& consumed = consumed_[static_cast<size_t>(user)];
  for (int32_t w = 0; w < options_.num_walks; ++w) {
    TweetId t = start_tweets[rng_.NextBounded(start_tweets.size())];
    for (int32_t d = 0; d < options_.walk_depth; ++d) {
      const UserId v = random_interactor(t);
      if (v == kInvalidNode) break;
      t = random_tweet_of(v);
      if (t == kInvalidTweet) break;
      const bool fresh =
          tweet_time_[static_cast<size_t>(t)] + options_.freshness_window >=
              now &&
          tweet_time_[static_cast<size_t>(t)] <= now;
      if (fresh && !consumed.contains(t) &&
          tweet_author_[static_cast<size_t>(t)] != user) {
        ++visits[t];
      }
    }
  }

  std::vector<ScoredTweet> scored;
  scored.reserve(visits.size());
  for (const auto& [t, count] : visits) {
    scored.push_back(ScoredTweet{t, static_cast<double>(count)});
  }
  const auto better = [](const ScoredTweet& a, const ScoredTweet& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tweet < b.tweet;
  };
  if (static_cast<int64_t>(scored.size()) > k) {
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      better);
    scored.resize(static_cast<size_t>(k));
  } else {
    std::sort(scored.begin(), scored.end(), better);
  }
  return scored;
}

int64_t GraphJetRecommender::num_live_interactions() const {
  int64_t total = 0;
  for (const Segment& seg : segments_) total += seg.num_edges;
  return total;
}

}  // namespace simgraph
