#ifndef SIMGRAPH_BASELINES_GRAPHJET_RECOMMENDER_H_
#define SIMGRAPH_BASELINES_GRAPHJET_RECOMMENDER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/recommender.h"
#include "util/random.h"

namespace simgraph {

/// Configuration of the GraphJet-style baseline.
struct GraphJetOptions {
  /// Length of the maintained interaction window; interactions older than
  /// this are dropped (GraphJet keeps only recent engagements).
  Timestamp window = 48 * kSecondsPerHour;
  /// Temporal segment span; the bipartite graph is a ring of segments and
  /// expiry happens a segment at a time, as in the GraphJet paper.
  Timestamp segment_span = 6 * kSecondsPerHour;
  /// Random-walk budget per recommendation query.
  int32_t num_walks = 400;
  /// User->tweet->user steps per walk (SALSA-style alternation).
  int32_t walk_depth = 3;
  /// Resommendations must be fresher than this.
  Timestamp freshness_window = 72 * kSecondsPerHour;
  uint64_t seed = 11;
};

/// Reimplementation of Twitter's GraphJet recommender (Sharma et al.,
/// VLDB 2016): a dynamic bipartite user/tweet interaction graph stored as
/// a ring of temporal segments, queried with Monte-Carlo SALSA-style
/// random walks.
///
/// Unlike the message-centric systems, GraphJet is user-centric: a query
/// for user u starts `num_walks` walks at u, alternately stepping to a
/// random interacted tweet and to a random user who interacted with that
/// tweet; tweets are ranked by visit count. Only interactions inside the
/// sliding window exist, which is what biases GraphJet towards currently
/// popular posts (Figure 12) and starves low-activity users (Figure 9).
class GraphJetRecommender : public Recommender {
 public:
  explicit GraphJetRecommender(GraphJetOptions options = {});

  std::string name() const override { return "GraphJet"; }
  Status Train(const Dataset& dataset, int64_t train_end) override;
  void Observe(const RetweetEvent& event) override;
  std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                     int32_t k) override;

  /// Interactions currently held across all live segments.
  int64_t num_live_interactions() const;

 private:
  /// One temporal segment of the bipartite interaction multigraph.
  struct Segment {
    Timestamp start = 0;
    std::unordered_map<UserId, std::vector<TweetId>> by_user;
    std::unordered_map<TweetId, std::vector<UserId>> by_tweet;
    int64_t num_edges = 0;
  };

  void Ingest(UserId user, TweetId tweet, Timestamp time);
  void Rotate(Timestamp now);

  GraphJetOptions options_;
  Rng rng_;
  std::deque<Segment> segments_;
  std::vector<Timestamp> tweet_time_;
  std::vector<UserId> tweet_author_;
  std::vector<std::unordered_set<TweetId>> consumed_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_BASELINES_GRAPHJET_RECOMMENDER_H_
