#ifndef SIMGRAPH_BASELINES_BAYES_RECOMMENDER_H_
#define SIMGRAPH_BASELINES_BAYES_RECOMMENDER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/candidate_store.h"
#include "core/recommender.h"
#include "graph/digraph.h"

namespace simgraph {

/// Configuration of the Bayesian-inference baseline.
struct BayesOptions {
  /// Likelihood weight of one sharing followee: the strength of the
  /// evidence "my followee shared it, so I may like it".
  double evidence_weight = 0.3;
  /// Propagation stops when a user's posterior gain is below this — the
  /// computational threshold the paper adds to keep the method tractable.
  double propagation_threshold = 0.01;
  /// Posteriors below this are not deposited as candidates: weak beliefs
  /// ("a follower of a follower shared it once") do not surface in the
  /// recommendation list. Bounds the candidate pool, which is what caps
  /// Bayes' recall capacity in Figure 7.
  double min_belief = 0.05;
  Timestamp freshness_window = 72 * kSecondsPerHour;
};

/// Bayesian-inference recommendation over the social network, after Yang,
/// Guo and Liu (IEEE TPDS 2013), adapted as the paper describes: ratings
/// are collapsed to binary like/ignore feedback, and a probability
/// threshold bounds the inference depth.
///
/// Each share is treated as evidence for the sharer's followers. A user's
/// belief about post t combines their sharing followees' beliefs under an
/// independent noisy-OR model:
///
///   P(u likes t) = 1 - prod_{v in followees(u)} (1 - w * P(v likes t))
///
/// and the update propagates breadth-first through the follow graph while
/// the posterior gain exceeds the threshold. Inference runs on the raw
/// follow graph (not a similarity structure), which makes it local and
/// expensive per message — matching its Table 5 profile and its bias
/// towards unpopular, nearby posts (Figure 12).
class BayesRecommender : public Recommender {
 public:
  explicit BayesRecommender(BayesOptions options = {});

  std::string name() const override { return "Bayes"; }
  Status Train(const Dataset& dataset, int64_t train_end) override;
  void Observe(const RetweetEvent& event) override;
  std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                     int32_t k) override;

 private:
  BayesOptions options_;
  const Digraph* follow_graph_ = nullptr;
  std::unique_ptr<CandidateStore> candidates_;
  /// Per live tweet: current posterior per user (sharers pinned at 1).
  std::unordered_map<TweetId, std::unordered_map<UserId, double>> belief_;
  std::vector<UserId> tweet_author_;
  std::vector<Timestamp> tweet_time_;
  int64_t observed_ = 0;
};

}  // namespace simgraph

#endif  // SIMGRAPH_BASELINES_BAYES_RECOMMENDER_H_
