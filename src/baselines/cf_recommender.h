#ifndef SIMGRAPH_BASELINES_CF_RECOMMENDER_H_
#define SIMGRAPH_BASELINES_CF_RECOMMENDER_H_

#include <memory>
#include <vector>

#include "core/candidate_store.h"
#include "core/recommender.h"
#include "core/similarity.h"

namespace simgraph {

/// How CF computes the user-user similarity matrix at init time.
enum class CfInitMode {
  /// The paper's CF: evaluate sim(u, v) for every user pair (the |V|^2
  /// computation that dominates Table 5's CF initialisation cost).
  kAllPairs,
  /// Inverted-index acceleration: only pairs sharing a co-retweet are
  /// evaluated. Produces the identical neighbourhoods (all other pairs
  /// have similarity 0) at a fraction of the cost.
  kInvertedIndex,
};

/// Configuration of the collaborative-filtering baseline.
struct CfOptions {
  /// Neighbourhood size: each user keeps their top-M most similar users
  /// (Herlocker et al.'s kNN formulation of user-based CF).
  int32_t neighborhood_size = 50;
  CfInitMode init_mode = CfInitMode::kInvertedIndex;
  Timestamp freshness_window = 72 * kSecondsPerHour;
};

/// User-based collaborative filtering (Herlocker et al., SIGIR'99), the
/// paper's "CF" competitor.
///
/// Initialisation computes, for every user, similarity against every user
/// sharing at least one co-retweet — the whole-matrix computation that
/// dominates CF's cost in Table 5 (we accelerate it with an inverted
/// index, which changes the constant, not the all-users scope). Each
/// user's top-M neighbours are kept. When neighbour v retweets post t,
/// t's score for u increases by sim(u,v); recommendations are the top-k
/// accumulated fresh posts. Unlike SimGraph there is no transitive
/// propagation: influence stops at the precomputed neighbourhood, but that
/// neighbourhood is network-unconstrained, which is why CF's candidate
/// scope (Figure 7) keeps growing linearly with k.
class CfRecommender : public Recommender {
 public:
  explicit CfRecommender(CfOptions options = {});

  std::string name() const override { return "CF"; }
  Status Train(const Dataset& dataset, int64_t train_end) override;
  void Observe(const RetweetEvent& event) override;
  std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                     int32_t k) override;

  /// Number of (influencer -> influenced) links kept after Train.
  int64_t num_influence_links() const;

 private:
  struct Influence {
    UserId target;  // the user being influenced
    double sim;
  };

  CfOptions options_;
  std::unique_ptr<CandidateStore> candidates_;
  /// reverse_[v] lists the users who count v among their top-M neighbours.
  std::vector<std::vector<Influence>> reverse_;
  std::vector<UserId> tweet_author_;
  int64_t observed_ = 0;
};

}  // namespace simgraph

#endif  // SIMGRAPH_BASELINES_CF_RECOMMENDER_H_
