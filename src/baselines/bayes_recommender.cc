#include "baselines/bayes_recommender.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {

BayesRecommender::BayesRecommender(BayesOptions options) : options_(options) {}

Status BayesRecommender::Train(const Dataset& dataset, int64_t train_end) {
  if (train_end < 0 || train_end > dataset.num_retweets()) {
    return Status::InvalidArgument("train_end out of range");
  }
  follow_graph_ = &dataset.follow_graph;

  std::vector<Timestamp> tweet_times;
  tweet_times.reserve(dataset.tweets.size());
  tweet_author_.clear();
  tweet_time_.clear();
  for (const Tweet& t : dataset.tweets) {
    tweet_times.push_back(t.time);
    tweet_author_.push_back(t.author);
    tweet_time_.push_back(t.time);
  }
  candidates_ = std::make_unique<CandidateStore>(
      dataset.num_users(), std::move(tweet_times), options_.freshness_window);
  for (int64_t i = 0; i < train_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    candidates_->MarkConsumed(e.user, e.tweet);
  }
  belief_.clear();
  observed_ = 0;
  return Status::Ok();
}

void BayesRecommender::Observe(const RetweetEvent& event) {
  SIMGRAPH_CHECK(follow_graph_ != nullptr) << "Train must be called first";
  candidates_->MarkConsumed(event.user, event.tweet);
  candidates_->MarkConsumed(tweet_author_[static_cast<size_t>(event.tweet)],
                            event.tweet);

  auto& belief = belief_[event.tweet];
  belief[event.user] = 1.0;

  // Noisy-OR posterior refresh, breadth-first from the new sharer while
  // the gain stays above the propagation threshold.
  std::deque<UserId> frontier{event.user};
  while (!frontier.empty()) {
    const UserId v = frontier.front();
    frontier.pop_front();
    // v's belief changed; every follower of v re-evaluates.
    for (UserId f : follow_graph_->InNeighbors(v)) {
      // Recompute P(f likes t) from all of f's followees with evidence.
      double not_liking = 1.0;
      for (UserId g : follow_graph_->OutNeighbors(f)) {
        const auto it = belief.find(g);
        if (it != belief.end()) {
          not_liking *= 1.0 - options_.evidence_weight * it->second;
        }
      }
      const double p_new = 1.0 - not_liking;
      double& p_old = belief[f];
      if (p_old >= 1.0) continue;  // f already shared it
      const double gain = p_new - p_old;
      if (gain <= 0.0) continue;
      p_old = p_new;
      if (p_new >= options_.min_belief) {
        candidates_->Deposit(f, event.tweet, p_new);
      }
      if (gain >= options_.propagation_threshold) frontier.push_back(f);
    }
  }

  if (++observed_ % 20000 == 0) {
    candidates_->EvictStale(event.time);
    // Drop belief state of stale tweets.
    for (auto it = belief_.begin(); it != belief_.end();) {
      if (tweet_time_[static_cast<size_t>(it->first)] +
              options_.freshness_window <
          event.time) {
        it = belief_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::vector<ScoredTweet> BayesRecommender::Recommend(UserId user,
                                                     Timestamp now,
                                                     int32_t k) {
  SIMGRAPH_CHECK(candidates_ != nullptr) << "Train must be called first";
  SIMGRAPH_TRACE_SPAN("BayesRecommender::Recommend", "recommend");
  SIMGRAPH_SCOPED_LATENCY("recommend.bayes.seconds");
  return candidates_->TopK(user, now, k);
}

}  // namespace simgraph
