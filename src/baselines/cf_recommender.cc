#include "baselines/cf_recommender.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {

CfRecommender::CfRecommender(CfOptions options) : options_(options) {}

Status CfRecommender::Train(const Dataset& dataset, int64_t train_end) {
  if (train_end < 0 || train_end > dataset.num_retweets()) {
    return Status::InvalidArgument("train_end out of range");
  }
  ProfileStore profiles(dataset, train_end);

  reverse_.assign(static_cast<size_t>(dataset.num_users()), {});
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (profiles.ProfileSize(u) == 0) continue;
    std::vector<std::pair<UserId, double>> sims;
    if (options_.init_mode == CfInitMode::kAllPairs) {
      // Whole-matrix scan; zero-similarity pairs are dropped (they can
      // never enter a top-M neighbourhood).
      for (UserId v = 0; v < dataset.num_users(); ++v) {
        if (v == u) continue;
        const double s = profiles.Similarity(u, v);
        if (s > 0.0) sims.emplace_back(v, s);
      }
    } else {
      sims = profiles.SimilaritiesOf(u);
    }
    const int64_t m = std::min<int64_t>(options_.neighborhood_size,
                                        static_cast<int64_t>(sims.size()));
    std::partial_sort(sims.begin(), sims.begin() + m, sims.end(),
                      [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    for (int64_t i = 0; i < m; ++i) {
      reverse_[static_cast<size_t>(sims[static_cast<size_t>(i)].first)]
          .push_back(Influence{u, sims[static_cast<size_t>(i)].second});
    }
  }

  std::vector<Timestamp> tweet_times;
  tweet_times.reserve(dataset.tweets.size());
  tweet_author_.clear();
  tweet_author_.reserve(dataset.tweets.size());
  for (const Tweet& t : dataset.tweets) {
    tweet_times.push_back(t.time);
    tweet_author_.push_back(t.author);
  }
  candidates_ = std::make_unique<CandidateStore>(
      dataset.num_users(), std::move(tweet_times), options_.freshness_window);
  for (int64_t i = 0; i < train_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    candidates_->MarkConsumed(e.user, e.tweet);
  }
  observed_ = 0;
  return Status::Ok();
}

void CfRecommender::Observe(const RetweetEvent& event) {
  SIMGRAPH_CHECK(candidates_ != nullptr) << "Train must be called first";
  candidates_->MarkConsumed(event.user, event.tweet);
  candidates_->MarkConsumed(tweet_author_[static_cast<size_t>(event.tweet)],
                            event.tweet);
  for (const Influence& inf : reverse_[static_cast<size_t>(event.user)]) {
    candidates_->Accumulate(inf.target, event.tweet, inf.sim);
  }
  if (++observed_ % 50000 == 0) candidates_->EvictStale(event.time);
}

std::vector<ScoredTweet> CfRecommender::Recommend(UserId user, Timestamp now,
                                                  int32_t k) {
  SIMGRAPH_CHECK(candidates_ != nullptr) << "Train must be called first";
  SIMGRAPH_TRACE_SPAN("CfRecommender::Recommend", "recommend");
  SIMGRAPH_SCOPED_LATENCY("recommend.cf.seconds");
  return candidates_->TopK(user, now, k);
}

int64_t CfRecommender::num_influence_links() const {
  int64_t total = 0;
  for (const auto& v : reverse_) total += static_cast<int64_t>(v.size());
  return total;
}

}  // namespace simgraph
