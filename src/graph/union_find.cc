#include "graph/union_find.h"

#include <numeric>

#include "util/logging.h"

namespace simgraph {

UnionFind::UnionFind(int64_t n)
    : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1),
      num_sets_(n) {
  SIMGRAPH_CHECK_GE(n, 0);
  std::iota(parent_.begin(), parent_.end(), int64_t{0});
}

int64_t UnionFind::Find(int64_t x) {
  SIMGRAPH_CHECK_GE(x, 0);
  SIMGRAPH_CHECK_LT(x, static_cast<int64_t>(parent_.size()));
  int64_t root = x;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  while (parent_[static_cast<size_t>(x)] != root) {
    const int64_t next = parent_[static_cast<size_t>(x)];
    parent_[static_cast<size_t>(x)] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int64_t a, int64_t b) {
  int64_t ra = Find(a);
  int64_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<size_t>(rb)] = ra;
  size_[static_cast<size_t>(ra)] += size_[static_cast<size_t>(rb)];
  --num_sets_;
  return true;
}

int64_t UnionFind::SetSize(int64_t x) {
  return size_[static_cast<size_t>(Find(x))];
}

}  // namespace simgraph
