#ifndef SIMGRAPH_GRAPH_GRAPH_IO_H_
#define SIMGRAPH_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/digraph.h"
#include "util/status.h"

namespace simgraph {

/// Writes `g` as a text edge list: first line "num_nodes num_edges
/// weighted", then one "src dst [weight]" line per edge.
Status WriteEdgeList(const Digraph& g, const std::string& path);

/// Reads a graph written by WriteEdgeList.
StatusOr<Digraph> ReadEdgeList(const std::string& path);

/// Writes `g` in a compact binary format (magic + version header, then
/// raw CSR arrays). Roughly 5-10x smaller and faster than the text form.
Status WriteBinaryGraph(const Digraph& g, const std::string& path);

/// Reads a graph written by WriteBinaryGraph. Rejects wrong magic or
/// version and truncated files.
StatusOr<Digraph> ReadBinaryGraph(const std::string& path);

/// Writes `g` in Graphviz DOT format for visual inspection (weights
/// become edge labels). Intended for small graphs/subgraphs; refuses
/// graphs with more than `max_edges` edges (default 20000) because the
/// output would be unusable anyway.
Status WriteDot(const Digraph& g, const std::string& path,
                int64_t max_edges = 20000);

}  // namespace simgraph

#endif  // SIMGRAPH_GRAPH_GRAPH_IO_H_
