#include "graph/graph_stats.h"

#include <algorithm>

#include "graph/bfs.h"
#include "graph/union_find.h"
#include "util/logging.h"

namespace simgraph {
namespace {

TraversalDirection Direction(const PathStatsOptions& options) {
  return options.undirected ? TraversalDirection::kBoth
                            : TraversalDirection::kOut;
}

// Farthest node and its distance from `source`; kInvalidNode when `source`
// has no reachable peers.
std::pair<NodeId, int32_t> FarthestNode(const Digraph& g, NodeId source,
                                        TraversalDirection dir) {
  const std::vector<int32_t> dist = BfsDistances(g, source, dir);
  NodeId best = kInvalidNode;
  int32_t best_d = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int32_t d = dist[static_cast<size_t>(v)];
    if (d > best_d) {
      best_d = d;
      best = v;
    }
  }
  return {best, best_d};
}

}  // namespace

GraphSummary Summarize(const Digraph& g, const PathStatsOptions& options) {
  GraphSummary s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  if (g.num_nodes() == 0) return s;

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(u));
    s.max_in_degree = std::max(s.max_in_degree, g.InDegree(u));
  }
  s.avg_out_degree =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  s.avg_in_degree = s.avg_out_degree;

  const std::vector<int64_t> wcc = WeaklyConnectedComponentSizes(g);
  s.largest_wcc = wcc.empty() ? 0 : wcc.front();

  Rng rng(options.seed);
  const TraversalDirection dir = Direction(options);

  // Average path length over sampled sources (finite distances only).
  double total = 0.0;
  int64_t pairs = 0;
  const int32_t sources =
      std::min<int32_t>(options.num_sources, g.num_nodes());
  for (int32_t i = 0; i < sources; ++i) {
    const NodeId src = static_cast<NodeId>(
        rng.NextBounded(static_cast<uint64_t>(g.num_nodes())));
    for (int32_t d : BfsDistances(g, src, dir)) {
      if (d > 0) {
        total += d;
        ++pairs;
      }
    }
  }
  s.avg_path_length = pairs > 0 ? total / static_cast<double>(pairs) : 0.0;

  // Diameter lower bound via repeated double sweeps: BFS from a random
  // node, then BFS again from the farthest node found.
  int32_t diameter = 0;
  for (int32_t i = 0; i < options.num_sweeps; ++i) {
    const NodeId start = static_cast<NodeId>(
        rng.NextBounded(static_cast<uint64_t>(g.num_nodes())));
    const auto [far_node, d1] = FarthestNode(g, start, dir);
    diameter = std::max(diameter, d1);
    if (far_node != kInvalidNode) {
      const auto [unused, d2] = FarthestNode(g, far_node, dir);
      (void)unused;
      diameter = std::max(diameter, d2);
    }
  }
  s.diameter_estimate = diameter;
  return s;
}

std::map<int32_t, int64_t> ShortestPathDistribution(
    const Digraph& g, const PathStatsOptions& options) {
  std::map<int32_t, int64_t> dist_counts;
  if (g.num_nodes() == 0) return dist_counts;
  Rng rng(options.seed);
  const TraversalDirection dir = Direction(options);
  const int32_t sources =
      std::min<int32_t>(options.num_sources, g.num_nodes());
  for (int32_t i = 0; i < sources; ++i) {
    const NodeId src = static_cast<NodeId>(
        rng.NextBounded(static_cast<uint64_t>(g.num_nodes())));
    for (int32_t d : BfsDistances(g, src, dir)) {
      if (d > 0) ++dist_counts[d];
    }
  }
  return dist_counts;
}

std::map<int64_t, int64_t> OutDegreeDistribution(const Digraph& g) {
  std::map<int64_t, int64_t> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++out[g.OutDegree(u)];
  return out;
}

std::map<int64_t, int64_t> InDegreeDistribution(const Digraph& g) {
  std::map<int64_t, int64_t> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++out[g.InDegree(u)];
  return out;
}

std::vector<int64_t> WeaklyConnectedComponentSizes(const Digraph& g) {
  UnionFind uf(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) uf.Union(u, v);
  }
  std::map<int64_t, int64_t> size_by_root;
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++size_by_root[uf.Find(u)];
  std::vector<int64_t> sizes;
  sizes.reserve(size_by_root.size());
  for (const auto& [root, size] : size_by_root) sizes.push_back(size);
  std::sort(sizes.begin(), sizes.end(), std::greater<int64_t>());
  return sizes;
}

}  // namespace simgraph
