#ifndef SIMGRAPH_GRAPH_UNION_FIND_H_
#define SIMGRAPH_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace simgraph {

/// Disjoint-set forest with path compression and union by size; used for
/// weakly-connected-component extraction.
class UnionFind {
 public:
  /// Creates `n` singleton sets.
  explicit UnionFind(int64_t n);

  /// Representative of x's set (with path compression).
  int64_t Find(int64_t x);

  /// Merges the sets of a and b; returns true when they were distinct.
  bool Union(int64_t a, int64_t b);

  /// Size of the set containing x.
  int64_t SetSize(int64_t x);

  /// Number of disjoint sets remaining.
  int64_t num_sets() const { return num_sets_; }

 private:
  std::vector<int64_t> parent_;
  std::vector<int64_t> size_;
  int64_t num_sets_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_GRAPH_UNION_FIND_H_
