#include "graph/bfs.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/logging.h"

namespace simgraph {
namespace {

// Invokes `fn(v)` for every neighbour v of u in the requested direction.
template <typename Fn>
void ForEachNeighbor(const Digraph& g, NodeId u, TraversalDirection dir,
                     Fn&& fn) {
  if (dir == TraversalDirection::kOut || dir == TraversalDirection::kBoth) {
    for (NodeId v : g.OutNeighbors(u)) fn(v);
  }
  if (dir == TraversalDirection::kIn || dir == TraversalDirection::kBoth) {
    for (NodeId v : g.InNeighbors(u)) fn(v);
  }
}

}  // namespace

std::vector<int32_t> BfsDistances(const Digraph& g, NodeId source,
                                  TraversalDirection dir) {
  return BfsDistancesBounded(g, source, dir,
                             std::max<int32_t>(1, g.num_nodes()));
}

std::vector<int32_t> BfsDistancesBounded(const Digraph& g, NodeId source,
                                         TraversalDirection dir,
                                         int32_t max_depth) {
  SIMGRAPH_CHECK_GE(source, 0);
  SIMGRAPH_CHECK_LT(source, g.num_nodes());
  std::vector<int32_t> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::deque<NodeId> frontier;
  dist[static_cast<size_t>(source)] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const int32_t du = dist[static_cast<size_t>(u)];
    if (du >= max_depth) continue;
    ForEachNeighbor(g, u, dir, [&](NodeId v) {
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = du + 1;
        frontier.push_back(v);
      }
    });
  }
  return dist;
}

std::vector<HopNode> KHopNeighborhood(const Digraph& g, NodeId source,
                                      int32_t k, TraversalDirection dir) {
  SIMGRAPH_CHECK_GE(source, 0);
  SIMGRAPH_CHECK_LT(source, g.num_nodes());
  SIMGRAPH_CHECK_GE(k, 0);
  // Hash-set based visitation so cost is proportional to the explored ball,
  // not to |V| (this runs once per node during SimGraph construction).
  std::unordered_map<NodeId, int32_t> dist;
  dist.emplace(source, 0);
  std::deque<NodeId> frontier{source};
  std::vector<HopNode> out;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const int32_t du = dist[u];
    if (du >= k) continue;
    ForEachNeighbor(g, u, dir, [&](NodeId v) {
      if (dist.emplace(v, du + 1).second) {
        out.push_back(HopNode{v, du + 1});
        frontier.push_back(v);
      }
    });
  }
  std::sort(out.begin(), out.end(),
            [](const HopNode& a, const HopNode& b) { return a.node < b.node; });
  return out;
}

int32_t ShortestPathLength(const Digraph& g, NodeId source, NodeId target,
                           TraversalDirection dir) {
  SIMGRAPH_CHECK_GE(target, 0);
  SIMGRAPH_CHECK_LT(target, g.num_nodes());
  if (source == target) return 0;
  std::vector<int32_t> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::deque<NodeId> frontier;
  dist[static_cast<size_t>(source)] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const int32_t du = dist[static_cast<size_t>(u)];
    bool found = false;
    ForEachNeighbor(g, u, dir, [&](NodeId v) {
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = du + 1;
        if (v == target) found = true;
        frontier.push_back(v);
      }
    });
    if (found) return du + 1;
  }
  return -1;
}

}  // namespace simgraph
