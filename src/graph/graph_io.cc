#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace simgraph {
namespace {

constexpr char kBinaryMagic[8] = {'S', 'I', 'M', 'G', 'R', 'P', 'H', '1'};

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool WriteVec(std::ofstream& out, const std::vector<T>& v) {
  const int64_t n = static_cast<int64_t>(v.size());
  if (!WritePod(out, n)) return false;
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>* v, int64_t max_elems) {
  int64_t n = 0;
  if (!ReadPod(in, &n) || n < 0 || n > max_elems) return false;
  v->resize(static_cast<size_t>(n));
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteEdgeList(const Digraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << g.num_nodes() << " " << g.num_edges() << " "
      << (g.has_weights() ? 1 : 0) << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    if (g.has_weights()) {
      const auto weights = g.OutWeights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        out << u << " " << nbrs[i] << " " << weights[i] << "\n";
      }
    } else {
      for (NodeId v : nbrs) out << u << " " << v << "\n";
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Digraph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int weighted = 0;
  if (!(in >> num_nodes >> num_edges >> weighted)) {
    return Status::IoError("malformed header in " + path);
  }
  if (num_nodes < 0 || num_edges < 0 || (weighted != 0 && weighted != 1)) {
    return Status::IoError("invalid header values in " + path);
  }
  GraphBuilder builder(static_cast<NodeId>(num_nodes));
  for (int64_t i = 0; i < num_edges; ++i) {
    int64_t u = 0;
    int64_t v = 0;
    double w = 1.0;
    if (!(in >> u >> v)) return Status::IoError("truncated edge list: " + path);
    if (weighted == 1 && !(in >> w)) {
      return Status::IoError("truncated weights: " + path);
    }
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes || u == v) {
      return Status::IoError("invalid edge in " + path);
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  return builder.Build(weighted == 1);
}

Status WriteBinaryGraph(const Digraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const int64_t num_nodes = g.num_nodes();
  const int64_t num_edges = g.num_edges();
  const int8_t weighted = g.has_weights() ? 1 : 0;
  if (!WritePod(out, num_nodes) || !WritePod(out, num_edges) ||
      !WritePod(out, weighted)) {
    return Status::IoError("header write failed: " + path);
  }
  // Flattened CSR: degrees, then concatenated targets (and weights).
  std::vector<int64_t> degrees;
  std::vector<NodeId> targets;
  std::vector<double> weights;
  degrees.reserve(static_cast<size_t>(num_nodes));
  targets.reserve(static_cast<size_t>(num_edges));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    degrees.push_back(g.OutDegree(u));
    const auto nbrs = g.OutNeighbors(u);
    targets.insert(targets.end(), nbrs.begin(), nbrs.end());
    if (weighted == 1) {
      const auto w = g.OutWeights(u);
      weights.insert(weights.end(), w.begin(), w.end());
    }
  }
  if (!WriteVec(out, degrees) || !WriteVec(out, targets)) {
    return Status::IoError("payload write failed: " + path);
  }
  if (weighted == 1 && !WriteVec(out, weights)) {
    return Status::IoError("weights write failed: " + path);
  }
  out.flush();
  if (!out) return Status::IoError("flush failed: " + path);
  return Status::Ok();
}

StatusOr<Digraph> ReadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::IoError("bad magic (not a SimGraph binary graph): " +
                           path);
  }
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  int8_t weighted = 0;
  if (!ReadPod(in, &num_nodes) || !ReadPod(in, &num_edges) ||
      !ReadPod(in, &weighted) || num_nodes < 0 || num_edges < 0 ||
      (weighted != 0 && weighted != 1)) {
    return Status::IoError("bad binary header: " + path);
  }
  // A hostile header must not drive vector sizes: every section length is
  // bounded by what the file could physically hold, so a forged count
  // fails cleanly instead of attempting a multi-exabyte allocation.
  std::error_code ec;
  const auto file_bytes =
      static_cast<int64_t>(std::filesystem::file_size(path, ec));
  if (ec) return Status::IoError("cannot stat: " + path);
  if (num_nodes > file_bytes || num_edges > file_bytes) {
    return Status::IoError("implausible binary header counts: " + path);
  }
  std::vector<int64_t> degrees;
  std::vector<NodeId> targets;
  std::vector<double> weights;
  if (!ReadVec(in, &degrees, num_nodes) || !ReadVec(in, &targets, num_edges)) {
    return Status::IoError("truncated binary graph: " + path);
  }
  if (weighted == 1 && !ReadVec(in, &weights, num_edges)) {
    return Status::IoError("truncated weights: " + path);
  }
  if (static_cast<int64_t>(degrees.size()) != num_nodes ||
      static_cast<int64_t>(targets.size()) != num_edges ||
      (weighted == 1 &&
       static_cast<int64_t>(weights.size()) != num_edges)) {
    return Status::IoError("inconsistent binary payload: " + path);
  }
  GraphBuilder builder(static_cast<NodeId>(num_nodes));
  size_t cursor = 0;
  for (int64_t u = 0; u < num_nodes; ++u) {
    const int64_t deg = degrees[static_cast<size_t>(u)];
    if (deg < 0 || cursor + static_cast<size_t>(deg) > targets.size()) {
      return Status::IoError("corrupt degree table: " + path);
    }
    for (int64_t i = 0; i < deg; ++i, ++cursor) {
      const NodeId v = targets[cursor];
      if (v < 0 || v >= num_nodes || v == static_cast<NodeId>(u)) {
        return Status::IoError("corrupt edge in binary graph: " + path);
      }
      builder.AddEdge(static_cast<NodeId>(u), v,
                      weighted == 1 ? weights[cursor] : 1.0);
    }
  }
  return builder.Build(weighted == 1);
}

Status WriteDot(const Digraph& g, const std::string& path,
                int64_t max_edges) {
  if (g.num_edges() > max_edges) {
    return Status::FailedPrecondition(
        "graph too large for DOT export (" + std::to_string(g.num_edges()) +
        " edges > " + std::to_string(max_edges) + ")");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "digraph simgraph {\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.OutNeighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out << "  " << u << " -> " << nbrs[i];
      if (g.has_weights()) {
        out << " [label=\"" << g.OutWeights(u)[i] << "\"]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace simgraph
