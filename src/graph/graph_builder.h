#ifndef SIMGRAPH_GRAPH_GRAPH_BUILDER_H_
#define SIMGRAPH_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace simgraph {

/// Accumulates edges and produces an immutable CSR Digraph. Self-loops are
/// rejected; duplicate edges are deduplicated at Build time (for weighted
/// graphs the last-added weight wins).
class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id space [0, num_nodes).
  explicit GraphBuilder(NodeId num_nodes);

  /// Adds the directed edge u->v with optional weight.
  /// Preconditions: 0 <= u,v < num_nodes, u != v.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Number of edges added so far (before deduplication).
  int64_t num_pending_edges() const {
    return static_cast<int64_t>(edges_.size());
  }

  /// Builds the graph. `weighted` controls whether per-edge weights are
  /// stored. Consumes the builder's buffers; the builder is empty afterwards.
  Digraph Build(bool weighted = false);

 private:
  struct Edge {
    NodeId src;
    NodeId dst;
    double weight;
  };

  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_GRAPH_GRAPH_BUILDER_H_
