#include "graph/digraph.h"

#include <algorithm>

#include "util/logging.h"

namespace simgraph {

bool Digraph::HasEdge(NodeId u, NodeId v) const {
  const auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Digraph::EdgeWeight(NodeId u, NodeId v) const {
  SIMGRAPH_CHECK(has_weights());
  const auto nbrs = OutNeighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0;
  const int64_t idx = out_offsets_[u] + (it - nbrs.begin());
  return out_weights_[static_cast<size_t>(idx)];
}

int64_t Digraph::MemoryBytes() const {
  return static_cast<int64_t>(
      out_offsets_.size() * sizeof(int64_t) +
      out_targets_.size() * sizeof(NodeId) +
      out_weights_.size() * sizeof(double) +
      in_offsets_.size() * sizeof(int64_t) +
      in_sources_.size() * sizeof(NodeId));
}

}  // namespace simgraph
