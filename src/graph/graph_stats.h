#ifndef SIMGRAPH_GRAPH_GRAPH_STATS_H_
#define SIMGRAPH_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/digraph.h"
#include "util/random.h"

namespace simgraph {

/// Summary statistics mirroring the paper's Table 1 / Table 4 rows.
struct GraphSummary {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  double avg_out_degree = 0.0;
  double avg_in_degree = 0.0;
  int64_t max_out_degree = 0;
  int64_t max_in_degree = 0;
  /// Estimated longest shortest path (lower bound via double sweeps).
  int32_t diameter_estimate = 0;
  /// Mean finite shortest-path length over sampled source BFS runs.
  double avg_path_length = 0.0;
  /// Size of the largest weakly connected component.
  int64_t largest_wcc = 0;
};

/// Options for the sampled path-length / diameter estimation.
struct PathStatsOptions {
  /// Number of BFS sources to sample for average path length.
  int32_t num_sources = 64;
  /// Number of double-sweep restarts for the diameter estimate.
  int32_t num_sweeps = 8;
  /// Treat edges as undirected when measuring paths (the paper reports
  /// undirected-style smallest paths on the follow graph).
  bool undirected = true;
  uint64_t seed = 1;
};

/// Computes degree statistics, sampled average path length, a double-sweep
/// diameter lower bound and the largest WCC size.
GraphSummary Summarize(const Digraph& g, const PathStatsOptions& options);

/// Distribution of finite shortest-path lengths from `num_sources` sampled
/// sources to all reachable nodes: result[d] = number of (source, node)
/// pairs at distance d (d >= 1). This regenerates Figures 1 and 5.
std::map<int32_t, int64_t> ShortestPathDistribution(
    const Digraph& g, const PathStatsOptions& options);

/// Out-degree histogram: result[d] = number of nodes with out-degree d.
std::map<int64_t, int64_t> OutDegreeDistribution(const Digraph& g);

/// In-degree histogram.
std::map<int64_t, int64_t> InDegreeDistribution(const Digraph& g);

/// Sizes of all weakly connected components, descending.
std::vector<int64_t> WeaklyConnectedComponentSizes(const Digraph& g);

}  // namespace simgraph

#endif  // SIMGRAPH_GRAPH_GRAPH_STATS_H_
