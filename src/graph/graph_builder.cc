#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace simgraph {

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {
  SIMGRAPH_CHECK_GE(num_nodes, 0);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  SIMGRAPH_CHECK_GE(u, 0);
  SIMGRAPH_CHECK_LT(u, num_nodes_);
  SIMGRAPH_CHECK_GE(v, 0);
  SIMGRAPH_CHECK_LT(v, num_nodes_);
  SIMGRAPH_CHECK_NE(u, v) << "self-loops are not allowed";
  edges_.push_back(Edge{u, v, weight});
}

Digraph GraphBuilder::Build(bool weighted) {
  // Stable sort by (src, dst); for duplicates the last-added edge wins, so
  // we keep the final occurrence of each (src, dst) pair.
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const Edge& a, const Edge& b) {
                     if (a.src != b.src) return a.src < b.src;
                     return a.dst < b.dst;
                   });
  // Deduplicate, keeping the last occurrence within each equal range.
  size_t out = 0;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i + 1 < edges_.size() && edges_[i].src == edges_[i + 1].src &&
        edges_[i].dst == edges_[i + 1].dst) {
      continue;  // a later duplicate supersedes this one
    }
    edges_[out++] = edges_[i];
  }
  edges_.resize(out);

  Digraph g;
  g.num_nodes_ = num_nodes_;
  const size_t m = edges_.size();
  g.out_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  g.out_targets_.resize(m);
  if (weighted) g.out_weights_.resize(m);

  for (const Edge& e : edges_) ++g.out_offsets_[static_cast<size_t>(e.src) + 1];
  for (size_t i = 1; i < g.out_offsets_.size(); ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }
  // Edges are sorted, so we can fill sequentially.
  for (size_t i = 0; i < m; ++i) {
    g.out_targets_[i] = edges_[i].dst;
    if (weighted) g.out_weights_[i] = edges_[i].weight;
  }

  // Transpose for in-adjacency.
  g.in_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  g.in_sources_.resize(m);
  for (const Edge& e : edges_) ++g.in_offsets_[static_cast<size_t>(e.dst) + 1];
  for (size_t i = 1; i < g.in_offsets_.size(); ++i) {
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  std::vector<int64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : edges_) {
    g.in_sources_[static_cast<size_t>(cursor[static_cast<size_t>(e.dst)]++)] =
        e.src;
  }
  // Sources were appended in (src-sorted) order per destination, so each
  // in-neighbour span is already ascending.

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace simgraph
