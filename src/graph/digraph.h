#ifndef SIMGRAPH_GRAPH_DIGRAPH_H_
#define SIMGRAPH_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace simgraph {

/// Node identifier; nodes are dense integers [0, num_nodes).
using NodeId = int32_t;

/// An invalid node marker.
inline constexpr NodeId kInvalidNode = -1;

/// Immutable directed graph in compressed-sparse-row form, with both
/// out-adjacency (followees: edges u->v mean "u follows v") and the
/// transposed in-adjacency (followers). Optionally carries one double
/// weight per out-edge (used by the similarity graph).
///
/// Construction goes through GraphBuilder, which sorts and deduplicates
/// edges; neighbour spans are therefore sorted by target id, enabling
/// binary-searched HasEdge and linear-merge set intersections.
class Digraph {
 public:
  /// An empty graph.
  Digraph() = default;

  NodeId num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(out_targets_.size()); }
  bool has_weights() const { return !out_weights_.empty(); }

  /// Out-neighbours of `u`, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbours of `u`, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId u) const {
    return {in_sources_.data() + in_offsets_[u],
            in_sources_.data() + in_offsets_[u + 1]};
  }

  /// Weights parallel to OutNeighbors(u). Precondition: has_weights().
  std::span<const double> OutWeights(NodeId u) const {
    return {out_weights_.data() + out_offsets_[u],
            out_weights_.data() + out_offsets_[u + 1]};
  }

  int64_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  int64_t InDegree(NodeId u) const {
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  /// True when the edge u->v exists (binary search, O(log deg)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Weight of edge u->v, or 0.0 when absent. Precondition: has_weights().
  double EdgeWeight(NodeId u, NodeId v) const;

  /// Memory footprint of the adjacency arrays in bytes.
  int64_t MemoryBytes() const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  std::vector<int64_t> out_offsets_{0};
  std::vector<NodeId> out_targets_;
  std::vector<double> out_weights_;  // empty when unweighted
  std::vector<int64_t> in_offsets_{0};
  std::vector<NodeId> in_sources_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_GRAPH_DIGRAPH_H_
