#ifndef SIMGRAPH_GRAPH_BFS_H_
#define SIMGRAPH_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace simgraph {

/// Direction of traversal relative to edge orientation.
enum class TraversalDirection {
  kOut,   ///< follow u->v along out-edges
  kIn,    ///< follow v->u along in-edges
  kBoth,  ///< treat the graph as undirected
};

/// Breadth-first distances (in hops) from `source` to every node;
/// unreachable nodes get -1. O(V + E).
std::vector<int32_t> BfsDistances(const Digraph& g, NodeId source,
                                  TraversalDirection dir);

/// Like BfsDistances but stops expanding beyond `max_depth` hops. Nodes
/// farther than max_depth (or unreachable) get -1. Worst case O(V + E) but
/// typically touches only the ball of radius max_depth.
std::vector<int32_t> BfsDistancesBounded(const Digraph& g, NodeId source,
                                         TraversalDirection dir,
                                         int32_t max_depth);

/// A node together with its hop distance from the exploration source.
struct HopNode {
  NodeId node;
  int32_t depth;
};

/// The k-hop neighbourhood N_k(u): every node reachable from `source`
/// within `k` hops, excluding `source` itself, with its depth. This is the
/// paper's N2(u) when k=2. Result is sorted by node id.
std::vector<HopNode> KHopNeighborhood(const Digraph& g, NodeId source,
                                      int32_t k, TraversalDirection dir);

/// BFS shortest-path distance from `source` to `target` only; -1 when
/// unreachable. Stops as soon as `target` is settled.
int32_t ShortestPathLength(const Digraph& g, NodeId source, NodeId target,
                           TraversalDirection dir);

}  // namespace simgraph

#endif  // SIMGRAPH_GRAPH_BFS_H_
