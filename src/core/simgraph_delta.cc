#include "core/simgraph_delta.h"

#include <cstring>

namespace simgraph {
namespace {

// Fixed-width little-endian primitives. The repo only targets
// little-endian hosts, so encoding is a memcpy; going through memcpy
// (not reinterpret_cast) keeps it alignment- and aliasing-clean.

template <typename T>
void AppendRaw(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Bounds-checked reader over the serialized buffer.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads a section count and checks the remaining bytes can hold
  /// `count * entry_size` before any per-entry read runs — a corrupt
  /// count fails fast instead of looping.
  bool ReadCount(uint64_t entry_size, uint64_t* count) {
    if (!Read(count)) return false;
    const uint64_t remaining = bytes_.size() - pos_;
    return entry_size == 0 || *count <= remaining / entry_size;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

constexpr uint64_t kHeaderBytes = 4 + 2 + 2 +  // magic, version, flags
                                  8 * 4 +      // seqs, version, epoch
                                  8;           // evict_before
constexpr uint64_t kEdgeUpsertBytes = 4 + 4 + 8;
constexpr uint64_t kEdgeRemoveBytes = 4 + 4;
constexpr uint64_t kDepositBytes = 4 + 8 + 8;
constexpr uint64_t kConsumeBytes = 4 + 8;
constexpr uint64_t kInvalidatedBytes = 4;

Status Corrupt(const char* what) {
  return Status(StatusCode::kInvalidArgument,
                std::string("SimGraphDelta::Parse: ") + what);
}

}  // namespace

void SimGraphDelta::Clear() {
  seq_begin = 0;
  seq_end = 0;
  graph_version = 0;
  snapshot_epoch = 0;
  flags = 0;
  evict_before = 0;
  edge_upserts.clear();
  edge_removes.clear();
  deposits.clear();
  consumed.clear();
  invalidated.clear();
  snapshot.reset();
}

int64_t SimGraphDelta::ByteSize() const {
  return static_cast<int64_t>(
      kHeaderBytes + 5 * 8 +  // five section counts
      edge_upserts.size() * kEdgeUpsertBytes +
      edge_removes.size() * kEdgeRemoveBytes +
      deposits.size() * kDepositBytes + consumed.size() * kConsumeBytes +
      invalidated.size() * kInvalidatedBytes);
}

void SimGraphDelta::SerializeTo(std::string* out) const {
  out->reserve(out->size() + static_cast<size_t>(ByteSize()));
  AppendRaw<uint32_t>(out, kMagic);
  AppendRaw<uint16_t>(out, kVersion);
  AppendRaw<uint16_t>(out, flags);
  AppendRaw<uint64_t>(out, seq_begin);
  AppendRaw<uint64_t>(out, seq_end);
  AppendRaw<uint64_t>(out, graph_version);
  AppendRaw<uint64_t>(out, snapshot_epoch);
  AppendRaw<int64_t>(out, evict_before);

  AppendRaw<uint64_t>(out, edge_upserts.size());
  for (const EdgeUpsert& op : edge_upserts) {
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(op.src));
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(op.dst));
    AppendRaw<double>(out, op.weight);
  }
  AppendRaw<uint64_t>(out, edge_removes.size());
  for (const EdgeRemove& op : edge_removes) {
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(op.src));
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(op.dst));
  }
  AppendRaw<uint64_t>(out, deposits.size());
  for (const Deposit& op : deposits) {
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(op.user));
    AppendRaw<int64_t>(out, op.tweet);
    AppendRaw<double>(out, op.score);
  }
  AppendRaw<uint64_t>(out, consumed.size());
  for (const Consume& op : consumed) {
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(op.user));
    AppendRaw<int64_t>(out, op.tweet);
  }
  AppendRaw<uint64_t>(out, invalidated.size());
  for (const UserId user : invalidated) {
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(user));
  }
}

Status SimGraphDelta::Parse(std::string_view bytes, SimGraphDelta* out) {
  out->Clear();
  Reader reader(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  if (!reader.Read(&magic) || !reader.Read(&version) ||
      !reader.Read(&out->flags)) {
    return Corrupt("truncated header");
  }
  if (magic != kMagic) return Corrupt("bad magic");
  if (version != kVersion) return Corrupt("unsupported version");
  if ((out->flags & ~kFlagSnapshotRefresh) != 0) {
    return Corrupt("unknown flag bits");
  }
  if (!reader.Read(&out->seq_begin) || !reader.Read(&out->seq_end) ||
      !reader.Read(&out->graph_version) ||
      !reader.Read(&out->snapshot_epoch) || !reader.Read(&out->evict_before)) {
    return Corrupt("truncated header");
  }
  if (out->seq_end < out->seq_begin) return Corrupt("inverted seq range");

  uint64_t count = 0;
  if (!reader.ReadCount(kEdgeUpsertBytes, &count)) {
    return Corrupt("bad edge_upserts count");
  }
  out->edge_upserts.resize(count);
  for (EdgeUpsert& op : out->edge_upserts) {
    uint32_t src = 0;
    uint32_t dst = 0;
    if (!reader.Read(&src) || !reader.Read(&dst) || !reader.Read(&op.weight)) {
      return Corrupt("truncated edge_upserts");
    }
    op.src = static_cast<UserId>(src);
    op.dst = static_cast<UserId>(dst);
  }
  if (!reader.ReadCount(kEdgeRemoveBytes, &count)) {
    return Corrupt("bad edge_removes count");
  }
  out->edge_removes.resize(count);
  for (EdgeRemove& op : out->edge_removes) {
    uint32_t src = 0;
    uint32_t dst = 0;
    if (!reader.Read(&src) || !reader.Read(&dst)) {
      return Corrupt("truncated edge_removes");
    }
    op.src = static_cast<UserId>(src);
    op.dst = static_cast<UserId>(dst);
  }
  if (!reader.ReadCount(kDepositBytes, &count)) {
    return Corrupt("bad deposits count");
  }
  out->deposits.resize(count);
  for (Deposit& op : out->deposits) {
    uint32_t user = 0;
    if (!reader.Read(&user) || !reader.Read(&op.tweet) ||
        !reader.Read(&op.score)) {
      return Corrupt("truncated deposits");
    }
    op.user = static_cast<UserId>(user);
  }
  if (!reader.ReadCount(kConsumeBytes, &count)) {
    return Corrupt("bad consumed count");
  }
  out->consumed.resize(count);
  for (Consume& op : out->consumed) {
    uint32_t user = 0;
    if (!reader.Read(&user) || !reader.Read(&op.tweet)) {
      return Corrupt("truncated consumed");
    }
    op.user = static_cast<UserId>(user);
  }
  if (!reader.ReadCount(kInvalidatedBytes, &count)) {
    return Corrupt("bad invalidated count");
  }
  out->invalidated.resize(count);
  for (UserId& user : out->invalidated) {
    uint32_t raw = 0;
    if (!reader.Read(&raw)) return Corrupt("truncated invalidated");
    user = static_cast<UserId>(raw);
  }
  if (!reader.AtEnd()) return Corrupt("trailing bytes");
  return Status::Ok();
}

}  // namespace simgraph
