#ifndef SIMGRAPH_CORE_SIMGRAPH_RECOMMENDER_H_
#define SIMGRAPH_CORE_SIMGRAPH_RECOMMENDER_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/candidate_store.h"
#include "core/propagation.h"
#include "core/recommender.h"
#include "core/simgraph.h"
#include "core/similarity.h"

namespace simgraph {

/// Configuration of the end-to-end SimGraph recommender.
struct SimGraphRecommenderOptions {
  SimGraphOptions graph;
  PropagationOptions propagation;
  /// Posts older than this are never recommended (Section 3.1.2 concludes
  /// 72 h).
  Timestamp freshness_window = 72 * kSecondsPerHour;
  /// Postponed computation delta (Section 5.4): propagation for a tweet
  /// runs at most once per this interval; retweets arriving in between are
  /// batched into the next run. 0 propagates on every retweet.
  Timestamp postpone_delta = 0;
  /// Propagated scores below this floor are not deposited as candidates:
  /// a vanishing probability ("a friend of a friend of someone who shared
  /// it") is propagation bookkeeping, not a recommendation. Works with
  /// the beta/gamma thresholds to keep the daily capacity in the paper's
  /// 50-70 band.
  double min_deposit_score = 0.0;
  /// Cold-start fallback (Section 4.1): users absent from the SimGraph
  /// have no propagated candidates; when enabled, their recommendations
  /// are assembled from the candidates of the accounts they follow
  /// ("using the neighbourhood's computed recommendation of cold start
  /// nodes"), scores scaled by 1/|followees|.
  bool cold_start_fallback = false;
  /// Cap on the followees consulted for a cold-start query.
  int32_t cold_start_max_followees = 30;
};

/// The paper's system: SimGraph + iterative score propagation.
///
/// Training builds retweet profiles over the training prefix and the
/// similarity graph on top of them. Each observed test retweet extends the
/// tweet's seed set and (subject to the postponement policy) re-propagates
/// the tweet through the SimGraph; propagated scores are deposited into a
/// per-user candidate store from which Recommend serves fresh top-k posts.
class SimGraphRecommender : public Recommender {
 public:
  explicit SimGraphRecommender(SimGraphRecommenderOptions options = {});

  std::string name() const override { return "SimGraph"; }
  Status Train(const Dataset& dataset, int64_t train_end) override;
  void Observe(const RetweetEvent& event) override;
  std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                     int32_t k) override;

  /// Replaces the similarity graph (used by the Figure 16 update-strategy
  /// study to swap in stale / refreshed / crossfold graphs). Must be
  /// called after Train.
  void ReplaceSimGraph(SimGraph sim_graph);

  /// The graph built by Train (or injected by ReplaceSimGraph).
  const SimGraph& sim_graph() const { return sim_graph_; }

  /// Cumulative number of propagation runs (for Table 5 accounting).
  int64_t num_propagations() const { return num_propagations_; }

  /// True when `user` has no incident SimGraph edge (the cold-start case
  /// of Section 4.1).
  bool IsColdUser(UserId user) const;

 private:
  struct TweetState {
    std::vector<UserId> seeds;
    Timestamp last_propagation = -1;
    int32_t pending = 0;  // retweets since the last propagation
  };

  void PropagateTweet(TweetId tweet, TweetState& state);

  /// Aggregates followees' candidates for a cold user.
  std::vector<ScoredTweet> ColdStartRecommend(UserId user, Timestamp now,
                                              int32_t k);

  SimGraphRecommenderOptions options_;
  const Digraph* follow_graph_ = nullptr;  // borrowed from the Train dataset
  SimGraph sim_graph_;
  std::unique_ptr<Propagator> propagator_;
  // Reused across PropagateTweet calls so steady-state Observe ingest is
  // allocation-free (Observe is single-threaded per Recommender contract).
  PropagationScratch propagation_scratch_;
  PropagationResult propagation_result_;
  std::unique_ptr<CandidateStore> candidates_;
  std::unordered_map<TweetId, TweetState> tweet_state_;
  std::vector<UserId> tweet_author_;  // indexed by tweet id
  int64_t observed_ = 0;
  int64_t num_propagations_ = 0;
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_SIMGRAPH_RECOMMENDER_H_
