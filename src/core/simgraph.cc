#include "core/simgraph.h"

#include <algorithm>
#include <atomic>

#include "graph/bfs.h"
#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stamped_set.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {
namespace {

struct WeightedEdge {
  NodeId src;
  NodeId dst;
  double weight;
};

// Candidate edges for one source user under the literal 2-hop procedure.
// Returns the number of candidates scored (the kept/scored ratio is the
// tau pruning rate, exported as simgraph.build.candidates_pruned).
int64_t CandidatesTwoHop(const Digraph& follow_graph,
                         const ProfileStore& profiles, UserId u,
                         const SimGraphOptions& options,
                         std::vector<WeightedEdge>& out) {
  int64_t scored = 0;
  for (const HopNode& hop : KHopNeighborhood(follow_graph, u, options.hops,
                                             TraversalDirection::kOut)) {
    const UserId w = hop.node;
    if (profiles.ProfileSize(w) == 0) continue;
    const double sim = profiles.Similarity(u, w);
    ++scored;
    if (sim >= options.tau) out.push_back(WeightedEdge{u, w, sim});
  }
  return scored;
}

// Candidate edges via the inverted index intersected with N2(u).
// `ball` is a reusable per-worker stamped visited array (O(1) clear), so
// the per-user N2(u) membership test allocates nothing once warm.
int64_t CandidatesInvertedIndex(const Digraph& follow_graph,
                                const ProfileStore& profiles, UserId u,
                                const SimGraphOptions& options,
                                StampedSet& ball,
                                std::vector<WeightedEdge>& out) {
  std::vector<std::pair<UserId, double>> sims = profiles.SimilaritiesOf(u);
  if (sims.empty()) return 0;
  ball.Reserve(static_cast<size_t>(follow_graph.num_nodes()));
  ball.Clear();
  for (const HopNode& hop : KHopNeighborhood(follow_graph, u, options.hops,
                                             TraversalDirection::kOut)) {
    ball.Insert(static_cast<size_t>(hop.node));
  }
  for (const auto& [w, sim] : sims) {
    if (sim >= options.tau && ball.Contains(static_cast<size_t>(w))) {
      out.push_back(WeightedEdge{u, w, sim});
    }
  }
  return static_cast<int64_t>(sims.size());
}

}  // namespace

int64_t SimGraph::NumPresentNodes() const {
  const int64_t cached = CachedPresentNodes();
  if (cached >= 0) return cached;
  int64_t present = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (graph.OutDegree(u) > 0 || graph.InDegree(u) > 0) ++present;
  }
  present_nodes_.store(present, std::memory_order_relaxed);
  return present;
}

double SimGraph::MeanSimilarity() const {
  if (graph.num_edges() == 0) return 0.0;
  double total = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (double w : graph.OutWeights(u)) total += w;
  }
  return total / static_cast<double>(graph.num_edges());
}

double SimGraph::MeanOutDegreePresent() const {
  const int64_t present = NumPresentNodes();
  if (present == 0) return 0.0;
  return static_cast<double>(graph.num_edges()) /
         static_cast<double>(present);
}

SimGraph BuildSimGraph(const Digraph& follow_graph,
                       const ProfileStore& profiles,
                       const SimGraphOptions& options) {
  SIMGRAPH_CHECK_GT(options.tau, 0.0)
      << "tau must be positive; tau == 0 would connect all user pairs";
  SIMGRAPH_CHECK_GE(options.hops, 1);
  SIMGRAPH_TRACE_SPAN("SimGraph::Build", "build");
  SIMGRAPH_SCOPED_LATENCY("simgraph.build.seconds");
  WallTimer timer;

  const NodeId n = follow_graph.num_nodes();
  ThreadPool pool(options.num_threads);
  std::vector<std::vector<WeightedEdge>> shards(
      static_cast<size_t>(pool.num_threads() * 4));
  std::atomic<size_t> shard_counter{0};
  std::atomic<int64_t> candidates_scored{0};
  // One stamped N2(u) visited array per pool worker (chunks on the same
  // worker run sequentially, so no synchronisation is needed).
  std::vector<StampedSet> balls(static_cast<size_t>(pool.num_threads()));

  {
    SIMGRAPH_TRACE_SPAN("SimGraph::Build/candidates", "build");
    SIMGRAPH_SCOPED_LATENCY("simgraph.build.candidates_seconds");
    ParallelFor(pool, n, [&](int64_t begin, int64_t end) {
      const size_t shard = shard_counter.fetch_add(1) % shards.size();
      auto& local = shards[shard];
      const int worker = ThreadPool::CurrentWorkerIndex();
      StampedSet fallback_ball;
      StampedSet& ball =
          worker >= 0 ? balls[static_cast<size_t>(worker)] : fallback_ball;
      int64_t scored = 0;
      for (int64_t i = begin; i < end; ++i) {
        const UserId u = static_cast<UserId>(i);
        if (profiles.ProfileSize(u) == 0) continue;
        switch (options.mode) {
          case CandidateMode::kTwoHopBfs:
            scored +=
                CandidatesTwoHop(follow_graph, profiles, u, options, local);
            break;
          case CandidateMode::kInvertedIndex:
            scored += CandidatesInvertedIndex(follow_graph, profiles, u,
                                              options, ball, local);
            break;
        }
      }
      candidates_scored.fetch_add(scored, std::memory_order_relaxed);
    });
  }

  SimGraph sg;
  {
    SIMGRAPH_TRACE_SPAN("SimGraph::Build/assemble", "build");
    SIMGRAPH_SCOPED_LATENCY("simgraph.build.assemble_seconds");
    GraphBuilder builder(n);
    for (const auto& shard : shards) {
      for (const WeightedEdge& e : shard) {
        builder.AddEdge(e.src, e.dst, e.weight);
      }
    }
    sg.graph = builder.Build(/*weighted=*/true);
  }
  const int64_t scored = candidates_scored.load(std::memory_order_relaxed);
  SIMGRAPH_COUNTER_ADD("simgraph.build.count", 1);
  SIMGRAPH_COUNTER_ADD("simgraph.build.candidates_scored", scored);
  SIMGRAPH_COUNTER_ADD("simgraph.build.edges_kept", sg.graph.num_edges());
  SIMGRAPH_COUNTER_ADD("simgraph.build.candidates_pruned",
                       scored - sg.graph.num_edges());
  SIMGRAPH_GAUGE_SET("simgraph.build.last_edges",
                     static_cast<double>(sg.graph.num_edges()));
  SIMGRAPH_LOG(Info) << "SimGraph built: " << sg.NumPresentNodes()
                     << " present nodes, " << sg.graph.num_edges()
                     << " edges (tau=" << options.tau << ") in "
                     << FormatDuration(timer.ElapsedSeconds());
  return sg;
}

GraphSummary SummarizeSimGraph(const SimGraph& sg,
                               const PathStatsOptions& path_options) {
  GraphSummary s = Summarize(sg.graph, path_options);
  // Report degree means over present nodes, matching Table 4.
  const int64_t present = sg.NumPresentNodes();
  if (present > 0) {
    s.avg_out_degree = static_cast<double>(sg.graph.num_edges()) /
                       static_cast<double>(present);
    s.avg_in_degree = s.avg_out_degree;
  }
  return s;
}

}  // namespace simgraph
