#ifndef SIMGRAPH_CORE_INCREMENTAL_H_
#define SIMGRAPH_CORE_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/simgraph.h"
#include "core/simgraph_delta.h"
#include "dataset/dataset.h"

namespace simgraph {

/// Mutable retweet profiles: the streaming counterpart of ProfileStore.
/// Supports appending events one at a time while serving the same
/// similarity queries.
///
/// The tweet id space is open-ended: in a serving deployment new posts
/// arrive continuously, so Apply grows the per-tweet state whenever an
/// event references a tweet id >= the initial `num_tweets`, and the
/// per-tweet accessors answer 0 / empty for ids never seen.
class MutableProfileStore {
 public:
  /// Creates empty profiles for `num_users` users over `num_tweets` ids
  /// (a lower bound; the tweet space grows on demand).
  MutableProfileStore(int32_t num_users, int64_t num_tweets);

  /// Appends one retweet. Duplicate (user, tweet) pairs are ignored.
  /// Grows the tweet space when event.tweet is beyond the current bound.
  void Apply(const RetweetEvent& event);

  int64_t ProfileSize(UserId u) const {
    return static_cast<int64_t>(profiles_[static_cast<size_t>(u)].size());
  }
  /// Tweets retweeted by `u`, ascending.
  const std::vector<TweetId>& Profile(UserId u) const {
    return profiles_[static_cast<size_t>(u)];
  }
  int32_t Popularity(TweetId t) const {
    const size_t i = static_cast<size_t>(t);
    return i < popularity_.size() ? popularity_[i] : 0;
  }
  /// Users who retweeted `t`, in arrival order (empty for unseen ids).
  const std::vector<UserId>& Retweeters(TweetId t) const;

  /// Upper bound of the tweet id space seen so far.
  int64_t num_tweets() const {
    return static_cast<int64_t>(popularity_.size());
  }

  /// Definition 3.1 on the current state; matches ProfileStore built over
  /// the same event prefix.
  double Similarity(UserId u, UserId v) const;

 private:
  std::vector<std::vector<TweetId>> profiles_;   // sorted
  std::vector<std::vector<UserId>> retweeters_;  // arrival order
  std::vector<int32_t> popularity_;
};

/// Statistics of the incremental maintenance work.
struct IncrementalStats {
  int64_t events_applied = 0;
  int64_t pairs_rescored = 0;
  int64_t edges_inserted = 0;
  int64_t edges_updated = 0;
  int64_t edges_dropped = 0;
};

/// Event-level SimGraph maintenance — the incremental regime Figure 16
/// points towards ("follow the evolution of users by incrementally
/// computing a SimGraph on top of the previous iteration").
///
/// Initialise from a training prefix (identical to BuildSimGraph), then
/// Apply() each new retweet: when user u retweets tweet t, exactly the
/// pairs (u, v) for v in retweeters(t) gain a new co-retweet, so their
/// similarities are recomputed and their edges upserted (or dropped when
/// the refreshed score falls below tau), honouring the 2-hop constraint
/// of Definition 4.1 in both directions. Pairs untouched by new events
/// keep their (possibly stale) weights, exactly like the paper's
/// "SimGraph updated" strategy — but at per-event granularity and a tiny
/// fraction of a rebuild's cost.
class IncrementalSimGraph {
 public:
  /// `follow_graph` must outlive this object.
  IncrementalSimGraph(const Digraph& follow_graph,
                      const SimGraphOptions& options);

  /// Builds profiles and the similarity graph from the first `event_end`
  /// retweets of `dataset`.
  Status Initialize(const Dataset& dataset, int64_t event_end);

  /// Applies one retweet event (must follow the initialisation prefix in
  /// time; duplicates are ignored).
  void Apply(const RetweetEvent& event) { Apply(event, nullptr); }

  /// Like Apply, additionally appending every resulting edge upsert/drop
  /// to `delta` (in rescoring order; an edge rescored twice appears
  /// twice — ordered replay is last-wins). Unchanged weights are not
  /// recorded. This is the extraction hook of the delta-shipping ingest
  /// pipeline (docs/ingest.md): replaying the recorded ops against a
  /// replica of the pre-event adjacency reproduces this graph exactly.
  /// `delta` may be null; other delta fields are left untouched.
  void Apply(const RetweetEvent& event, SimGraphDelta* delta);

  /// Materialises the current graph (CSR) for propagation / inspection.
  SimGraph Snapshot() const;

  /// Monotonic mutation counter: bumped by Initialize and by every Apply
  /// that could have changed the graph. The serving layer (src/serve/)
  /// uses it to decide when a published CSR snapshot is out of date and
  /// must be re-materialised (epoch swap).
  uint64_t version() const { return version_; }

  int64_t num_edges() const { return num_edges_; }
  const IncrementalStats& stats() const { return stats_; }
  const MutableProfileStore& profiles() const { return *profiles_; }

 private:
  /// True when w is within `hops` out-hops of u in the follow graph.
  bool WithinHops(UserId u, UserId w) const;

  /// Recomputes sim(u, v) and upserts/drops the edge u->v (only; callers
  /// handle the reverse direction). Records the op into `record_` when a
  /// delta is being extracted.
  void RescoreEdge(UserId u, UserId v);

  const Digraph* follow_graph_;
  SimGraphOptions options_;
  std::unique_ptr<MutableProfileStore> profiles_;
  /// adjacency_[u][v] = sim weight of edge u->v.
  std::vector<std::unordered_map<UserId, double>> adjacency_;
  /// reverse_[v] = sources of edges into v (kept in sync with adjacency_).
  std::vector<std::unordered_set<UserId>> reverse_;
  int64_t num_edges_ = 0;
  uint64_t version_ = 0;
  IncrementalStats stats_;
  /// Destination of edge ops while Apply(event, delta) runs; null
  /// outside delta extraction.
  SimGraphDelta* record_ = nullptr;
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_INCREMENTAL_H_
