#ifndef SIMGRAPH_CORE_CANDIDATE_STORE_H_
#define SIMGRAPH_CORE_CANDIDATE_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/recommender.h"
#include "dataset/types.h"

namespace simgraph {

/// Per-user accumulator of candidate posts with scores, shared by the
/// message-centric recommenders (SimGraph, CF, Bayes). Handles the two
/// recommendation hygiene rules of the protocol:
///   * never recommend a post the user already interacted with;
///   * never recommend an outdated post (older than the freshness window —
///     the paper's Section 3 concludes 72 h).
class CandidateStore {
 public:
  /// `tweet_times[i]` is the publication time of tweet i (used for the
  /// freshness filter).
  CandidateStore(int32_t num_users, std::vector<Timestamp> tweet_times,
                 Timestamp freshness_window);

  /// Raises the score of `tweet` for `user` to at least `score`
  /// (keeping the max of repeated deposits). Returns true when the stored
  /// score actually changed — the serving layer's precise cache
  /// invalidation keys off this.
  bool Deposit(UserId user, TweetId tweet, double score);

  /// Adds `delta` to the score of `tweet` for `user`. Returns true when
  /// the stored score changed (i.e. delta != 0 and not consumed).
  bool Accumulate(UserId user, TweetId tweet, double delta);

  /// Marks that `user` interacted with `tweet`; it will never be
  /// recommended to them again (and is removed if currently stored).
  void MarkConsumed(UserId user, TweetId tweet);

  /// True when MarkConsumed(user, tweet) was called before.
  bool IsConsumed(UserId user, TweetId tweet) const {
    return consumed_[static_cast<size_t>(user)].contains(tweet);
  }

  /// Top-k fresh, unconsumed candidates for `user` at time `now`, best
  /// first; ties broken by tweet id for determinism.
  std::vector<ScoredTweet> TopK(UserId user, Timestamp now, int32_t k) const;

  /// Drops stale candidates for all users (call periodically to bound
  /// memory). A tweet is stale when older than the freshness window
  /// relative to `now`.
  void EvictStale(Timestamp now);

  /// EvictStale restricted to one user, so concurrent callers that stripe
  /// their locks per user (src/serve/) can evict without a global lock.
  void EvictStaleForUser(UserId user, Timestamp now);

  /// The raw candidate map of `user` (consumed tweets are never present).
  /// Callers that need deadline-aware partial scans iterate this directly
  /// with IsFresh; everyone else should use TopK.
  const std::unordered_map<TweetId, double>& CandidatesOf(UserId user) const {
    return candidates_[static_cast<size_t>(user)];
  }

  /// True when `tweet` is within the freshness window at time `now`.
  bool IsFresh(TweetId tweet, Timestamp now) const {
    return tweet_times_[static_cast<size_t>(tweet)] + freshness_window_ >= now;
  }

  /// Publication time of `tweet`.
  Timestamp TweetTime(TweetId tweet) const {
    return tweet_times_[static_cast<size_t>(tweet)];
  }

  int64_t TotalCandidates() const;

 private:
  std::vector<Timestamp> tweet_times_;
  Timestamp freshness_window_;
  std::vector<std::unordered_map<TweetId, double>> candidates_;  // per user
  std::vector<std::unordered_set<TweetId>> consumed_;            // per user
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_CANDIDATE_STORE_H_
