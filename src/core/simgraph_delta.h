#ifndef SIMGRAPH_CORE_SIMGRAPH_DELTA_H_
#define SIMGRAPH_CORE_SIMGRAPH_DELTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/simgraph.h"
#include "dataset/types.h"
#include "util/status.h"

namespace simgraph {

/// The compact, epoch-stamped unit of work the delta-shipping ingest
/// pipeline sends from the single DeltaBuilder to every shard's
/// DeltaApplier (docs/ingest.md). One delta covers the contiguous event
/// range [seq_begin, seq_end] and carries, in application order,
/// everything a shard needs to advance its replica without re-running
/// the incremental SimGraph update itself:
///
///   * edge upserts/removes of the incremental similarity graph (the
///     builder records them as IncrementalSimGraph rescoring runs);
///   * consumed marks (user interacted with tweet — never recommend it
///     to them again);
///   * candidate deposits (propagated scores that actually raised a
///     stored candidate — the builder ships only changed deposits);
///   * the invalidated-user list (exactly the users whose cached answers
///     the covered events may have changed);
///   * an optional eviction watermark and an optional snapshot-refresh
///     marker (epoch swap).
///
/// Ops may contain duplicates (an edge rescored by several events in one
/// batch appears once per rescore); replay is strictly in order, so the
/// last op wins and replicas stay bit-identical to the builder's state.
///
/// The binary layout is versioned (kMagic/kVersion, little-endian) so a
/// future multi-process deployment can ship the same bytes over RPC; see
/// docs/ingest.md for the field-by-field layout. `snapshot` is an
/// in-process shortcut and is never serialized.
struct SimGraphDelta {
  /// First four serialized bytes, "SGDL" read as a little-endian u32.
  static constexpr uint32_t kMagic = 0x4C444753u;
  /// Current layout version; Parse rejects anything else.
  static constexpr uint16_t kVersion = 1;
  /// Flag bit: the builder re-materialised its CSR snapshot while
  /// building this delta; appliers must swap epochs after replaying the
  /// edge ops.
  static constexpr uint16_t kFlagSnapshotRefresh = 1u << 0;

  /// One rescored similarity edge src->dst now weighing `weight`.
  struct EdgeUpsert {
    UserId src = 0;
    UserId dst = 0;
    double weight = 0.0;
  };
  /// Edge src->dst fell below tau and was dropped.
  struct EdgeRemove {
    UserId src = 0;
    UserId dst = 0;
  };
  /// Candidate score of `tweet` for `user` raised to `score` (max-merge;
  /// only deposits that changed the stored score are shipped).
  struct Deposit {
    UserId user = 0;
    TweetId tweet = 0;
    double score = 0.0;
  };
  /// `user` interacted with `tweet`; remove it from their candidates and
  /// never recommend it to them again.
  struct Consume {
    UserId user = 0;
    TweetId tweet = 0;
  };

  /// Covered event range, inclusive, in global sequence numbers
  /// (1-based). seq_end - seq_begin + 1 events were folded in.
  uint64_t seq_begin = 0;
  uint64_t seq_end = 0;
  /// IncrementalSimGraph::version() after the covered events.
  uint64_t graph_version = 0;
  /// Snapshot epoch appliers must publish when kFlagSnapshotRefresh is
  /// set (unchanged otherwise).
  uint64_t snapshot_epoch = 0;
  /// OR of the kFlag* bits.
  uint16_t flags = 0;
  /// > 0: appliers drop candidates stale at this timestamp after
  /// replaying the ops (bounds replica memory; never changes answers).
  Timestamp evict_before = 0;

  std::vector<EdgeUpsert> edge_upserts;
  std::vector<EdgeRemove> edge_removes;
  std::vector<Deposit> deposits;
  std::vector<Consume> consumed;
  /// Sorted, deduplicated users whose cached recommendations the covered
  /// events may have changed (drives precise cache invalidation).
  std::vector<UserId> invalidated;

  /// In-process fast path: when kFlagSnapshotRefresh is set the builder
  /// attaches its freshly materialised CSR snapshot, so local appliers
  /// swap a shared pointer instead of re-materialising. NOT serialized —
  /// remote appliers rebuild from the accumulated edge ops.
  std::shared_ptr<const SimGraph> snapshot;

  bool has_flag(uint16_t flag) const { return (flags & flag) != 0; }
  int64_t num_events() const {
    return seq_begin == 0 ? 0
                          : static_cast<int64_t>(seq_end - seq_begin) + 1;
  }
  /// Total graph-edge ops (upserts + removes).
  int64_t num_edge_ops() const {
    return static_cast<int64_t>(edge_upserts.size() + edge_removes.size());
  }

  /// Resets to an empty delta, keeping vector capacity (the builder
  /// reuses one scratch delta per batch).
  void Clear();

  /// Exact size in bytes SerializeTo appends.
  int64_t ByteSize() const;

  /// Appends the versioned little-endian wire encoding to `out`.
  void SerializeTo(std::string* out) const;

  /// Parses a buffer produced by SerializeTo. Rejects wrong magic,
  /// unknown version or flags, truncated sections, and trailing bytes.
  /// `out` is cleared first; `snapshot` is always null after parsing.
  static Status Parse(std::string_view bytes, SimGraphDelta* out);
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_SIMGRAPH_DELTA_H_
