#include "core/propagation.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {

double DynamicThreshold::Evaluate(int64_t m) const {
  if (m <= 0) return 0.0;
  const double mp = std::pow(static_cast<double>(m), p);
  return mp / (std::pow(k, p) + mp);
}

Propagator::Propagator(const SimGraph& sim_graph) : sim_graph_(&sim_graph) {}

PropagationResult Propagator::Propagate(
    const std::vector<UserId>& seeds, int64_t popularity,
    const PropagationOptions& options) const {
  SIMGRAPH_TRACE_SPAN("Propagator::Propagate", "propagation");
  SIMGRAPH_SCOPED_LATENCY("propagation.run_seconds");
  const Digraph& g = sim_graph_->graph;
  PropagationResult result;

  std::unordered_set<UserId> seed_set;
  for (UserId s : seeds) {
    SIMGRAPH_CHECK_GE(s, 0);
    SIMGRAPH_CHECK_LT(s, g.num_nodes());
    seed_set.insert(s);
  }
  if (seed_set.empty()) {
    result.converged = true;
    return result;
  }

  const double propagation_threshold =
      options.dynamic.enabled
          ? options.dynamic.Evaluate(popularity) * options.dynamic_scale
          : options.beta;

  // Sparse scores; absent means 0. Seeds are pinned at 1 and never stored
  // here (ScoreOf special-cases them).
  std::unordered_map<UserId, double> score;
  auto score_of = [&](UserId v) -> double {
    if (seed_set.contains(v)) return 1.0;
    const auto it = score.find(v);
    return it == score.end() ? 0.0 : it->second;
  };

  // Users whose score changed enough last round to justify re-evaluating
  // their influencees this round.
  std::vector<UserId> frontier(seed_set.begin(), seed_set.end());
  std::sort(frontier.begin(), frontier.end());

  // Per-iteration convergence stats are only worth their clock calls
  // when someone is listening; the flag is sampled once per run.
  const bool metrics_on = metrics::Enabled();
  WallTimer iteration_timer;

  bool converged = false;
  int32_t it = 0;
  for (; it < options.max_iterations && !frontier.empty(); ++it) {
    if (metrics_on) {
      iteration_timer.Restart();
      SIMGRAPH_HISTOGRAM_RECORD("propagation.frontier_size",
                                static_cast<double>(frontier.size()));
    }
    // Affected users: those influenced by a frontier member, i.e. the
    // in-neighbours in the SimGraph (edge u->v means v influences u).
    std::unordered_set<UserId> affected;
    for (UserId v : frontier) {
      for (UserId u : g.InNeighbors(v)) {
        if (!seed_set.contains(u)) affected.insert(u);
      }
    }

    // Jacobi-style round: evaluate all affected users against the scores
    // of the previous round (Algorithm 1 line 10).
    std::vector<std::pair<UserId, double>> updates;
    updates.reserve(affected.size());
    for (UserId u : affected) {
      const auto nbrs = g.OutNeighbors(u);
      const auto weights = g.OutWeights(u);
      double acc = 0.0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        acc += score_of(nbrs[i]) * weights[i];
      }
      const double p_new = acc / static_cast<double>(nbrs.size());
      updates.emplace_back(u, p_new);
    }

    std::vector<UserId> next_frontier;
    double residual = 0.0;  // largest score move this iteration
    for (const auto& [u, p_new] : updates) {
      const double p_old = score_of(u);
      const double delta = std::abs(p_new - p_old);
      residual = std::max(residual, delta);
      if (delta <= options.epsilon) continue;
      score[u] = p_new;
      ++result.updates;
      // The static/dynamic threshold gates further propagation, not the
      // score update itself (Section 5.4).
      if (delta >= propagation_threshold) next_frontier.push_back(u);
    }
    if (metrics_on) {
      SIMGRAPH_HISTOGRAM_RECORD("propagation.iteration_seconds",
                                iteration_timer.ElapsedSeconds());
      SIMGRAPH_HISTOGRAM_RECORD("propagation.residual", residual);
    }
    if (next_frontier.empty()) {
      converged = true;
      ++it;
      break;
    }
    std::sort(next_frontier.begin(), next_frontier.end());
    frontier = std::move(next_frontier);
  }

  result.iterations = it;
  result.converged = converged || frontier.empty();
  SIMGRAPH_COUNTER_ADD("propagation.runs", 1);
  SIMGRAPH_COUNTER_ADD("propagation.iterations", it);
  SIMGRAPH_COUNTER_ADD("propagation.updates", result.updates);
  if (result.converged) SIMGRAPH_COUNTER_ADD("propagation.converged", 1);
  result.scores.reserve(score.size());
  for (const auto& [u, p] : score) {
    if (p > 0.0) result.scores.push_back(UserScore{u, p});
  }
  return result;
}

std::vector<PropagationResult> Propagator::PropagateBatch(
    const std::vector<std::vector<UserId>>& seed_sets,
    const PropagationOptions& options, ThreadPool& pool) const {
  SIMGRAPH_TRACE_SPAN("Propagator::PropagateBatch", "propagation");
  std::vector<PropagationResult> results(seed_sets.size());
  ParallelFor(pool, static_cast<int64_t>(seed_sets.size()),
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const auto& seeds = seed_sets[static_cast<size_t>(i)];
                  results[static_cast<size_t>(i)] = Propagate(
                      seeds, static_cast<int64_t>(seeds.size()), options);
                }
              });
  return results;
}

SparseMatrix BuildPropagationSystem(const SimGraph& sim_graph,
                                    const std::vector<UserId>& seeds,
                                    std::vector<UserId>* users,
                                    std::vector<double>* b) {
  SIMGRAPH_CHECK(users != nullptr);
  SIMGRAPH_CHECK(b != nullptr);
  const Digraph& g = sim_graph.graph;

  std::unordered_set<UserId> seed_set(seeds.begin(), seeds.end());

  // Reverse-reachable closure from the seeds: everyone whose score can be
  // non-zero. Edge u->v means v influences u, so influence flows along
  // in-neighbour chains. Rows are assigned in BFS discovery order from the
  // sorted seed list, which is deterministic.
  std::vector<UserId> sorted_seeds(seed_set.begin(), seed_set.end());
  std::sort(sorted_seeds.begin(), sorted_seeds.end());
  std::unordered_map<UserId, int32_t> row_of;
  std::vector<UserId> final_order;
  std::deque<UserId> queue;
  auto visit = [&](UserId v) {
    if (row_of.emplace(v, static_cast<int32_t>(final_order.size())).second) {
      final_order.push_back(v);
      queue.push_back(v);
    }
  };
  for (UserId s : sorted_seeds) visit(s);
  while (!queue.empty()) {
    const UserId v = queue.front();
    queue.pop_front();
    for (UserId u : g.InNeighbors(v)) visit(u);
  }

  const size_t n = final_order.size();
  std::vector<double> diag(n, 1.0);
  std::vector<std::vector<MatrixEntry>> rows(n);
  b->assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const UserId u = final_order[i];
    if (seed_set.contains(u)) {
      (*b)[i] = 1.0;  // clamped identity row
      continue;
    }
    const auto nbrs = g.OutNeighbors(u);
    const auto weights = g.OutWeights(u);
    const double inv_deg =
        nbrs.empty() ? 0.0 : 1.0 / static_cast<double>(nbrs.size());
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const auto it = row_of.find(nbrs[j]);
      if (it == row_of.end()) continue;  // influencer with provably-zero score
      rows[i].push_back(MatrixEntry{it->second, -weights[j] * inv_deg});
    }
  }
  *users = std::move(final_order);
  return SparseMatrix(std::move(diag), rows);
}

}  // namespace simgraph
