#include "core/propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SIMGRAPH_PROPAGATION_X86_GATHER 1
#include <immintrin.h>
#endif

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {
namespace {

// ---- AccumulateMode::kLanes inner loop --------------------------------
//
// Four partial sums, lane j owning elements i ≡ j (mod 4), combined as
// (l0+l1)+(l2+l3). The scalar and vector bodies implement the same lane
// assignment, so switching between them only moves results within
// floating-point rounding of the same reassociated reduction. kExact (the
// sequential loop in PropagateInto) stays the default and is bit-identical
// to ReferencePropagate.

double DotGatherLanesScalar(const double* value, const NodeId* nbrs,
                            const double* weights, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += value[nbrs[i + 0]] * weights[i + 0];
    l1 += value[nbrs[i + 1]] * weights[i + 1];
    l2 += value[nbrs[i + 2]] * weights[i + 2];
    l3 += value[nbrs[i + 3]] * weights[i + 3];
  }
  double acc = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) acc += value[nbrs[i]] * weights[i];
  return acc;
}

#ifdef SIMGRAPH_PROPAGATION_X86_GATHER
__attribute__((target("avx2,fma"))) double DotGatherLanesAvx2(
    const double* value, const NodeId* nbrs, const double* weights,
    size_t n) {
  __m256d lanes = _mm256_setzero_pd();
  // The masked gather with a zero source and an all-ones mask is the
  // plain gather; the unmasked intrinsic's wrapper trips GCC's
  // maybe-uninitialized diagnostic on its pass-through operand.
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(nbrs + i));
    const __m256d v = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), value,
                                               idx, all, sizeof(double));
    const __m256d w = _mm256_loadu_pd(weights + i);
    lanes = _mm256_fmadd_pd(v, w, lanes);
  }
  alignas(32) double l[4];
  _mm256_store_pd(l, lanes);
  double acc = (l[0] + l[1]) + (l[2] + l[3]);
  for (; i < n; ++i) acc += value[nbrs[i]] * weights[i];
  return acc;
}

bool DetectAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
#endif  // SIMGRAPH_PROPAGATION_X86_GATHER

using DotGatherFn = double (*)(const double*, const NodeId*, const double*,
                               size_t);

// Runtime CPU dispatch, resolved once per process.
DotGatherFn ResolveDotGatherLanes() {
#ifdef SIMGRAPH_PROPAGATION_X86_GATHER
  if (DetectAvx2Fma()) return &DotGatherLanesAvx2;
#endif
  return &DotGatherLanesScalar;
}

const DotGatherFn kDotGatherLanes = ResolveDotGatherLanes();

}  // namespace

namespace internal {
bool LanesUseVectorGather() {
#ifdef SIMGRAPH_PROPAGATION_X86_GATHER
  return kDotGatherLanes == &DotGatherLanesAvx2;
#else
  return false;
#endif
}
}  // namespace internal

double DynamicThreshold::Evaluate(int64_t m) const {
  if (m <= 0) return 0.0;
  const double mp = std::pow(static_cast<double>(m), p);
  return mp / (std::pow(k, p) + mp);
}

void PropagationScratch::Reserve(NodeId num_nodes) {
  const size_t n = static_cast<size_t>(num_nodes);
  if (score_.size() >= n) return;
  score_.resize(n, 0.0);
  value_.resize(n, 0.0);
  score_stamp_.resize(n, 0);
  seed_stamp_.resize(n, 0);
  gen_stamp_.resize(n, 0);
  row_.resize(n, 0);
  SIMGRAPH_COUNTER_ADD("propagation.scratch.grows", 1);
  SIMGRAPH_GAUGE_SET("propagation.scratch.bytes",
                     static_cast<double>(MemoryBytes()));
}

int64_t PropagationScratch::MemoryBytes() const {
  auto bytes = [](const auto& v) {
    return static_cast<int64_t>(
        v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  return bytes(score_) + bytes(value_) + bytes(score_stamp_) +
         bytes(seed_stamp_) + bytes(gen_stamp_) + bytes(row_) +
         bytes(frontier_) + bytes(next_frontier_) + bytes(affected_) +
         bytes(seeds_) + bytes(update_) + bytes(touched_);
}

void PropagationScratch::BeginRun(NodeId num_nodes) {
  Reserve(num_nodes);
  if (run_epoch_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(score_stamp_.begin(), score_stamp_.end(), 0);
    std::fill(seed_stamp_.begin(), seed_stamp_.end(), 0);
    run_epoch_ = 0;
    ++epoch_resets_;
    SIMGRAPH_COUNTER_ADD("propagation.scratch.epoch_resets", 1);
  }
  ++run_epoch_;
}

uint32_t PropagationScratch::BeginGeneration() {
  if (gen_epoch_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(gen_stamp_.begin(), gen_stamp_.end(), 0);
    gen_epoch_ = 0;
    ++epoch_resets_;
    SIMGRAPH_COUNTER_ADD("propagation.scratch.epoch_resets", 1);
  }
  return ++gen_epoch_;
}

Propagator::Propagator(const SimGraph& sim_graph) : sim_graph_(&sim_graph) {}

PropagationResult Propagator::Propagate(
    const std::vector<UserId>& seeds, int64_t popularity,
    const PropagationOptions& options) const {
  PropagationScratch scratch;
  return Propagate(seeds, popularity, options, scratch);
}

PropagationResult Propagator::Propagate(const std::vector<UserId>& seeds,
                                        int64_t popularity,
                                        const PropagationOptions& options,
                                        PropagationScratch& scratch) const {
  PropagationResult result;
  PropagateInto(seeds, popularity, options, scratch, &result);
  return result;
}

void Propagator::PropagateInto(const std::vector<UserId>& seeds,
                               int64_t popularity,
                               const PropagationOptions& options,
                               PropagationScratch& scratch,
                               PropagationResult* result) const {
  SIMGRAPH_TRACE_SPAN("Propagator::Propagate", "propagation");
  SIMGRAPH_SCOPED_LATENCY("propagation.run_seconds");
  const Digraph& g = sim_graph_->graph;
  result->scores.clear();
  result->iterations = 0;
  result->updates = 0;
  result->converged = false;

  scratch.BeginRun(g.num_nodes());
  auto& frontier = scratch.frontier_;
  auto& next_frontier = scratch.next_frontier_;
  auto& affected = scratch.affected_;
  auto& seed_list = scratch.seeds_;
  auto& update = scratch.update_;
  auto& touched = scratch.touched_;
  frontier.clear();
  touched.clear();

  for (UserId s : seeds) {
    SIMGRAPH_CHECK_GE(s, 0);
    SIMGRAPH_CHECK_LT(s, g.num_nodes());
    if (!scratch.IsSeed(s)) {
      scratch.MarkSeed(s);
      frontier.push_back(s);
    }
  }
  if (frontier.empty()) {
    result->converged = true;
    return;
  }
  std::sort(frontier.begin(), frontier.end());
  // The frontier vector is consumed by the iteration loop; keep the deduped
  // seed list around for per-iteration gen pre-stamping and the value_
  // cleanup at the end of the run.
  seed_list.assign(frontier.begin(), frontier.end());
  // value_ is all-zero here (the invariant this function re-establishes on
  // every exit path below); pin the seeds at 1.0 for the gather loop.
  for (UserId s : seed_list) scratch.value_[static_cast<size_t>(s)] = 1.0;

  const double propagation_threshold =
      options.dynamic.enabled
          ? options.dynamic.Evaluate(popularity) * options.dynamic_scale
          : options.beta;

  // Per-iteration convergence stats are only worth their clock calls
  // when someone is listening; the flag is sampled once per run.
  const bool metrics_on = metrics::Enabled();
  WallTimer iteration_timer;

  bool converged = false;
  int32_t it = 0;
  for (; it < options.max_iterations && !frontier.empty(); ++it) {
    if (metrics_on) {
      iteration_timer.Restart();
      SIMGRAPH_HISTOGRAM_RECORD("propagation.frontier_size",
                                static_cast<double>(frontier.size()));
    }
    // Affected users: those influenced by a frontier member, i.e. the
    // in-neighbours in the SimGraph (edge u->v means v influences u).
    // Deduplicated by generation stamp; one generation per iteration.
    // Pre-stamping the seeds folds the seed exclusion into the same stamp
    // test, so the per-edge body is one load + one branch.
    const uint32_t gen = scratch.BeginGeneration();
    for (UserId s : seed_list) {
      scratch.gen_stamp_[static_cast<size_t>(s)] = gen;
    }
    affected.clear();
    for (UserId v : frontier) {
      for (UserId u : g.InNeighbors(v)) {
        uint32_t& stamp = scratch.gen_stamp_[static_cast<size_t>(u)];
        if (stamp == gen) continue;
        stamp = gen;
        affected.push_back(u);
      }
    }

    // Jacobi-style round: evaluate all affected users against the scores
    // of the previous round (Algorithm 1 line 10). The per-round values
    // do not depend on the enumeration order of `affected` because reads
    // go through value_, which is only written in the apply loop below.
    // value_ holds every node's effective score densely, so the gather is
    // branch-free; kExact keeps the sequential add order (bit-identical
    // to the reference), kLanes reassociates into four partial sums.
    update.clear();
    const double* const value = scratch.value_.data();
    if (options.accumulate == AccumulateMode::kLanes) {
      for (UserId u : affected) {
        const auto nbrs = g.OutNeighbors(u);
        const auto weights = g.OutWeights(u);
        const double acc =
            kDotGatherLanes(value, nbrs.data(), weights.data(), nbrs.size());
        update.push_back(acc / static_cast<double>(nbrs.size()));
      }
    } else {
      for (UserId u : affected) {
        const auto nbrs = g.OutNeighbors(u);
        const auto weights = g.OutWeights(u);
        double acc = 0.0;
        for (size_t i = 0; i < nbrs.size(); ++i) {
          acc += value[nbrs[i]] * weights[i];
        }
        update.push_back(acc / static_cast<double>(nbrs.size()));
      }
    }

    next_frontier.clear();
    double residual = 0.0;  // largest score move this iteration
    for (size_t k = 0; k < affected.size(); ++k) {
      const UserId u = affected[k];
      const double p_new = update[k];
      // Affected users are never seeds, so value_ is their ScoreOf.
      const double p_old = scratch.value_[static_cast<size_t>(u)];
      const double delta = std::abs(p_new - p_old);
      residual = std::max(residual, delta);
      if (delta <= options.epsilon) continue;
      if (!scratch.HasScore(u)) {
        scratch.score_stamp_[static_cast<size_t>(u)] = scratch.run_epoch_;
        touched.push_back(u);
      }
      scratch.score_[static_cast<size_t>(u)] = p_new;
      scratch.value_[static_cast<size_t>(u)] = p_new;
      ++result->updates;
      // The static/dynamic threshold gates further propagation, not the
      // score update itself (Section 5.4).
      if (delta >= propagation_threshold) next_frontier.push_back(u);
    }
    if (metrics_on) {
      SIMGRAPH_HISTOGRAM_RECORD("propagation.iteration_seconds",
                                iteration_timer.ElapsedSeconds());
      SIMGRAPH_HISTOGRAM_RECORD("propagation.residual", residual);
    }
    if (next_frontier.empty()) {
      converged = true;
      ++it;
      break;
    }
    std::sort(next_frontier.begin(), next_frontier.end());
    frontier.swap(next_frontier);
  }

  result->iterations = it;
  result->converged = converged || frontier.empty();
  SIMGRAPH_COUNTER_ADD("propagation.runs", 1);
  SIMGRAPH_COUNTER_ADD("propagation.iterations", it);
  SIMGRAPH_COUNTER_ADD("propagation.updates", result->updates);
  if (result->converged) SIMGRAPH_COUNTER_ADD("propagation.converged", 1);
  // `touched` holds exactly the users with a stored score this run; sort it
  // so the reported scores are deterministically ordered by user id.
  std::sort(touched.begin(), touched.end());
  for (UserId u : touched) {
    const double p = scratch.score_[static_cast<size_t>(u)];
    if (p > 0.0) result->scores.push_back(UserScore{u, p});
  }
  // Re-establish the all-zero value_ invariant: exactly the seeds and the
  // scored users were written above.
  for (UserId s : seed_list) scratch.value_[static_cast<size_t>(s)] = 0.0;
  for (UserId u : touched) scratch.value_[static_cast<size_t>(u)] = 0.0;
}

std::vector<PropagationResult> Propagator::PropagateBatch(
    const std::vector<std::vector<UserId>>& seed_sets,
    const PropagationOptions& options, ThreadPool& pool) const {
  SIMGRAPH_TRACE_SPAN("Propagator::PropagateBatch", "propagation");
  SIMGRAPH_SCOPED_LATENCY("propagation.batch.seconds");
  std::vector<PropagationResult> results(seed_sets.size());
  // One scratch per pool worker: chunks on the same worker run
  // sequentially, so each scratch is only ever touched by one thread.
  std::vector<PropagationScratch> scratches(
      static_cast<size_t>(pool.num_threads()));
  ParallelFor(pool, static_cast<int64_t>(seed_sets.size()),
              [&](int64_t begin, int64_t end) {
                const int worker = ThreadPool::CurrentWorkerIndex();
                PropagationScratch fallback;
                PropagationScratch& scratch =
                    worker >= 0 ? scratches[static_cast<size_t>(worker)]
                                : fallback;
                for (int64_t i = begin; i < end; ++i) {
                  const auto& seeds = seed_sets[static_cast<size_t>(i)];
                  PropagateInto(seeds, static_cast<int64_t>(seeds.size()),
                                options, scratch,
                                &results[static_cast<size_t>(i)]);
                }
              });
  return results;
}

SparseMatrix BuildPropagationSystem(const SimGraph& sim_graph,
                                    const std::vector<UserId>& seeds,
                                    std::vector<UserId>* users,
                                    std::vector<double>* b,
                                    PropagationScratch* scratch) {
  SIMGRAPH_CHECK(users != nullptr);
  SIMGRAPH_CHECK(b != nullptr);
  const Digraph& g = sim_graph.graph;

  PropagationScratch local;
  PropagationScratch& s = scratch != nullptr ? *scratch : local;
  s.BeginRun(g.num_nodes());

  // Deduplicated, sorted seed list; membership via seed stamps.
  auto& sorted_seeds = s.frontier_;
  sorted_seeds.clear();
  for (UserId v : seeds) {
    SIMGRAPH_CHECK_GE(v, 0);
    SIMGRAPH_CHECK_LT(v, g.num_nodes());
    if (!s.IsSeed(v)) {
      s.MarkSeed(v);
      sorted_seeds.push_back(v);
    }
  }
  std::sort(sorted_seeds.begin(), sorted_seeds.end());

  // Reverse-reachable closure from the seeds: everyone whose score can be
  // non-zero. Edge u->v means v influences u, so influence flows along
  // in-neighbour chains. Rows are assigned in BFS discovery order from the
  // sorted seed list, which is deterministic. The output vector doubles as
  // the BFS queue (push order == discovery order); row membership reuses
  // the score stamps, row indices live in the dense row_ array.
  std::vector<UserId>& final_order = *users;
  final_order.clear();
  auto visit = [&](UserId v) {
    if (s.HasScore(v)) return;
    s.score_stamp_[static_cast<size_t>(v)] = s.run_epoch_;
    s.row_[static_cast<size_t>(v)] = static_cast<int32_t>(final_order.size());
    final_order.push_back(v);
  };
  for (UserId v : sorted_seeds) visit(v);
  for (size_t head = 0; head < final_order.size(); ++head) {
    const UserId v = final_order[head];
    for (UserId u : g.InNeighbors(v)) visit(u);
  }

  const size_t n = final_order.size();
  std::vector<double> diag(n, 1.0);
  std::vector<std::vector<MatrixEntry>> rows(n);
  b->assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const UserId u = final_order[i];
    if (s.IsSeed(u)) {
      (*b)[i] = 1.0;  // clamped identity row
      continue;
    }
    const auto nbrs = g.OutNeighbors(u);
    const auto weights = g.OutWeights(u);
    const double inv_deg =
        nbrs.empty() ? 0.0 : 1.0 / static_cast<double>(nbrs.size());
    for (size_t j = 0; j < nbrs.size(); ++j) {
      const UserId w = nbrs[j];
      if (!s.HasScore(w)) continue;  // influencer with provably-zero score
      rows[i].push_back(MatrixEntry{s.row_[static_cast<size_t>(w)],
                                    -weights[j] * inv_deg});
    }
  }
  return SparseMatrix(std::move(diag), rows);
}

}  // namespace simgraph
