#ifndef SIMGRAPH_CORE_SIMGRAPH_H_
#define SIMGRAPH_CORE_SIMGRAPH_H_

#include <cstdint>
#include <vector>

#include "core/similarity.h"
#include "graph/digraph.h"
#include "graph/graph_stats.h"
#include "util/thread_pool.h"

namespace simgraph {

/// How SimGraphBuilder enumerates similarity candidates for each user.
enum class CandidateMode {
  /// The paper's literal procedure: explore N2(u) by BFS over the follow
  /// graph and score every reachable user.
  kTwoHopBfs,
  /// Optimised: use the retweet inverted index to enumerate only users
  /// sharing >= 1 profile tweet with u, then keep those inside N2(u).
  /// Produces the identical graph for tau > 0 at a fraction of the cost.
  kInvertedIndex,
};

/// Parameters of similarity-graph construction (Definition 4.1).
struct SimGraphOptions {
  /// Similarity threshold tau; edges need sim(u,w) >= tau.
  double tau = 0.01;
  /// Exploration radius; the paper's homophily study fixes this at 2.
  int32_t hops = 2;
  CandidateMode mode = CandidateMode::kInvertedIndex;
  /// Worker threads for the per-user exploration (0 = hardware).
  int32_t num_threads = 1;
};

/// The similarity graph: a weighted digraph over the user id space where
/// edge u->w carries sim(u, w) and means "w is an influential user of u"
/// (w's scores propagate to u).
struct SimGraph {
  Digraph graph;

  /// Users with at least one incident edge — the paper's |V'| (roughly
  /// half of all users on their crawl; cold users are absent).
  int64_t NumPresentNodes() const;

  /// Mean edge weight (the paper reports 0.0078).
  double MeanSimilarity() const;

  /// Mean out-degree over present nodes (the paper reports 5.9).
  double MeanOutDegreePresent() const;
};

/// Builds the SimGraph from the follow graph and the retweet profiles.
/// Deterministic regardless of thread count.
SimGraph BuildSimGraph(const Digraph& follow_graph,
                       const ProfileStore& profiles,
                       const SimGraphOptions& options);

/// Summary statistics for Table 4 / Figure 5 (path metrics are computed on
/// the SimGraph itself, treated as undirected like the paper's analysis).
GraphSummary SummarizeSimGraph(const SimGraph& sg,
                               const PathStatsOptions& path_options);

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_SIMGRAPH_H_
