#ifndef SIMGRAPH_CORE_SIMGRAPH_H_
#define SIMGRAPH_CORE_SIMGRAPH_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/similarity.h"
#include "graph/digraph.h"
#include "graph/graph_stats.h"
#include "util/thread_pool.h"

namespace simgraph {

/// How SimGraphBuilder enumerates similarity candidates for each user.
enum class CandidateMode {
  /// The paper's literal procedure: explore N2(u) by BFS over the follow
  /// graph and score every reachable user.
  kTwoHopBfs,
  /// Optimised: use the retweet inverted index to enumerate only users
  /// sharing >= 1 profile tweet with u, then keep those inside N2(u).
  /// Produces the identical graph for tau > 0 at a fraction of the cost.
  kInvertedIndex,
};

/// Parameters of similarity-graph construction (Definition 4.1).
struct SimGraphOptions {
  /// Similarity threshold tau; edges need sim(u,w) >= tau.
  double tau = 0.01;
  /// Exploration radius; the paper's homophily study fixes this at 2.
  int32_t hops = 2;
  CandidateMode mode = CandidateMode::kInvertedIndex;
  /// Worker threads for the per-user exploration (0 = hardware).
  int32_t num_threads = 1;
};

/// The similarity graph: a weighted digraph over the user id space where
/// edge u->w carries sim(u, w) and means "w is an influential user of u"
/// (w's scores propagate to u).
struct SimGraph {
  Digraph graph;

  SimGraph() = default;
  // The cached present-node count is an atomic (lazy compute may race with
  // itself across reader threads), which deletes the default copy/move
  // operations; re-instate them by copying the cache value through a load.
  SimGraph(const SimGraph& other)
      : graph(other.graph), present_nodes_(other.CachedPresentNodes()) {}
  SimGraph(SimGraph&& other) noexcept
      : graph(std::move(other.graph)),
        present_nodes_(other.CachedPresentNodes()) {}
  SimGraph& operator=(const SimGraph& other) {
    graph = other.graph;
    present_nodes_.store(other.CachedPresentNodes(),
                         std::memory_order_relaxed);
    return *this;
  }
  SimGraph& operator=(SimGraph&& other) noexcept {
    graph = std::move(other.graph);
    present_nodes_.store(other.CachedPresentNodes(),
                         std::memory_order_relaxed);
    return *this;
  }

  /// Users with at least one incident edge — the paper's |V'| (roughly
  /// half of all users on their crawl; cold users are absent). Computed
  /// lazily on first call and cached (it is an O(n) scan that summaries
  /// and MeanOutDegreePresent() used to redo every call); assign `graph`
  /// before the first query, or call InvalidatePresentNodesCache() after
  /// mutating `graph` on an already-queried SimGraph.
  int64_t NumPresentNodes() const;

  /// Drops the cached present-node count; the next NumPresentNodes()
  /// recomputes it from `graph`.
  void InvalidatePresentNodesCache() {
    present_nodes_.store(-1, std::memory_order_relaxed);
  }

  /// Mean edge weight (the paper reports 0.0078).
  double MeanSimilarity() const;

  /// Mean out-degree over present nodes (the paper reports 5.9).
  double MeanOutDegreePresent() const;

 private:
  int64_t CachedPresentNodes() const {
    return present_nodes_.load(std::memory_order_relaxed);
  }

  // -1 = not yet computed. Relaxed is enough: concurrent first readers
  // each compute the same value and the store is idempotent.
  mutable std::atomic<int64_t> present_nodes_{-1};
};

/// Builds the SimGraph from the follow graph and the retweet profiles.
/// Deterministic regardless of thread count.
SimGraph BuildSimGraph(const Digraph& follow_graph,
                       const ProfileStore& profiles,
                       const SimGraphOptions& options);

/// Summary statistics for Table 4 / Figure 5 (path metrics are computed on
/// the SimGraph itself, treated as undirected like the paper's analysis).
GraphSummary SummarizeSimGraph(const SimGraph& sg,
                               const PathStatsOptions& path_options);

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_SIMGRAPH_H_
