#ifndef SIMGRAPH_CORE_RECOMMENDER_H_
#define SIMGRAPH_CORE_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"
#include "util/status.h"

namespace simgraph {

/// A candidate post with its recommendation score.
struct ScoredTweet {
  TweetId tweet = kInvalidTweet;
  double score = 0.0;
};

/// Common interface of all four evaluated systems (SimGraph, CF, GraphJet,
/// Bayes). The evaluation harness drives recommenders through three
/// phases that mirror the paper's protocol:
///
///   1. Train(dataset, train_end): batch-learn from the oldest 90% of
///      retweet actions (timed as "initialisation" in Table 5);
///   2. Observe(event): the remaining actions stream in chronological
///      order (timed as "per message");
///   3. Recommend(user, now, k): the top-k posts for `user` at time `now`
///      (pulled once per simulated day by the harness).
///
/// Implementations must not peek at events later than those observed.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Short stable identifier, e.g. "SimGraph", "CF".
  virtual std::string name() const = 0;

  /// Batch-trains on dataset.retweets[0, train_end). The follow graph and
  /// the tweet catalogue (authors, timestamps) are available in full, as
  /// they were for every method in the paper.
  virtual Status Train(const Dataset& dataset, int64_t train_end) = 0;

  /// Ingests one test-period retweet.
  virtual void Observe(const RetweetEvent& event) = 0;

  /// Top-k recommendations for `user` at time `now`, best first. May
  /// return fewer than k when candidates are scarce (Figure 7 measures
  /// exactly this capacity).
  ///
  /// Determinism contract: implementations order by descending score and
  /// break score ties by ascending tweet id. The output is therefore a
  /// total order — Recommend(u, now, k1) is a prefix of
  /// Recommend(u, now, k2) for k1 <= k2 on identical state — which is
  /// what makes cached serving results and golden tests stable
  /// (tests/core/recommend_determinism_test.cc enforces this for all
  /// four systems).
  virtual std::vector<ScoredTweet> Recommend(UserId user, Timestamp now,
                                             int32_t k) = 0;
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_RECOMMENDER_H_
