#include "core/update.h"

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace simgraph {

std::string_view UpdateStrategyName(UpdateStrategy strategy) {
  switch (strategy) {
    case UpdateStrategy::kFromScratch:
      return "from scratch";
    case UpdateStrategy::kOldSimGraph:
      return "old SimGraph";
    case UpdateStrategy::kCrossfold:
      return "crossfold";
    case UpdateStrategy::kWeightUpdate:
      return "SimGraph updated";
  }
  return "unknown";
}

SimGraph RecomputeWeights(const SimGraph& graph,
                          const ProfileStore& profiles) {
  const Digraph& g = graph.graph;
  GraphBuilder builder(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      builder.AddEdge(u, v, profiles.Similarity(u, v));
    }
  }
  SimGraph out;
  out.graph = builder.Build(/*weighted=*/true);
  return out;
}

SimGraph BuildWithStrategy(UpdateStrategy strategy, const Dataset& dataset,
                           int64_t old_end, int64_t new_end,
                           const SimGraphOptions& options) {
  SIMGRAPH_CHECK_LE(old_end, new_end);
  switch (strategy) {
    case UpdateStrategy::kFromScratch: {
      ProfileStore profiles(dataset, new_end);
      return BuildSimGraph(dataset.follow_graph, profiles, options);
    }
    case UpdateStrategy::kOldSimGraph: {
      ProfileStore profiles(dataset, old_end);
      return BuildSimGraph(dataset.follow_graph, profiles, options);
    }
    case UpdateStrategy::kCrossfold: {
      ProfileStore old_profiles(dataset, old_end);
      const SimGraph old_graph =
          BuildSimGraph(dataset.follow_graph, old_profiles, options);
      ProfileStore new_profiles(dataset, new_end);
      // Construction re-run over the old similarity graph: candidates come
      // from 2-hop exploration of the old graph, scores from the fresh
      // profiles.
      return BuildSimGraph(old_graph.graph, new_profiles, options);
    }
    case UpdateStrategy::kWeightUpdate: {
      ProfileStore old_profiles(dataset, old_end);
      const SimGraph old_graph =
          BuildSimGraph(dataset.follow_graph, old_profiles, options);
      ProfileStore new_profiles(dataset, new_end);
      return RecomputeWeights(old_graph, new_profiles);
    }
  }
  SIMGRAPH_CHECK(false) << "unreachable";
  return SimGraph{};
}

UpdateStrategyRecommender::UpdateStrategyRecommender(
    UpdateStrategy strategy, int64_t old_end,
    SimGraphRecommenderOptions options)
    : SimGraphRecommender(options),
      strategy_(strategy),
      old_end_(old_end),
      graph_options_(options.graph) {}

std::string UpdateStrategyRecommender::name() const {
  return "SimGraph[" + std::string(UpdateStrategyName(strategy_)) + "]";
}

Status UpdateStrategyRecommender::Train(const Dataset& dataset,
                                        int64_t train_end) {
  SIMGRAPH_RETURN_IF_ERROR(SimGraphRecommender::Train(dataset, train_end));
  if (old_end_ > train_end) {
    return Status::InvalidArgument(
        "update strategy old_end is later than train_end");
  }
  ReplaceSimGraph(BuildWithStrategy(strategy_, dataset, old_end_, train_end,
                                    graph_options_));
  return Status::Ok();
}

}  // namespace simgraph
