#include "core/bubbles.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/random.h"

namespace simgraph {

std::vector<int64_t> BubbleAssignment::BubbleSizes() const {
  std::vector<int64_t> sizes(static_cast<size_t>(num_bubbles), 0);
  for (int32_t b : bubble_of) ++sizes[static_cast<size_t>(b)];
  return sizes;
}

int64_t BubbleAssignment::LargestBubble() const {
  const std::vector<int64_t> sizes = BubbleSizes();
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

BubbleAssignment DetectBubbles(const Digraph& graph,
                               const BubbleOptions& options) {
  const NodeId n = graph.num_nodes();
  std::vector<int32_t> label(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) label[static_cast<size_t>(u)] = u;

  Rng rng(options.seed);
  // Visit nodes in a shuffled order each sweep (standard label
  // propagation; the shuffle breaks ties between equally strong labels).
  std::vector<NodeId> order(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) order[static_cast<size_t>(u)] = u;

  std::unordered_map<int32_t, double> votes;
  for (int32_t it = 0; it < options.max_iterations; ++it) {
    // Fisher-Yates shuffle.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    bool changed = false;
    for (NodeId u : order) {
      votes.clear();
      const auto out = graph.OutNeighbors(u);
      for (size_t i = 0; i < out.size(); ++i) {
        const double w = options.use_weights && graph.has_weights()
                             ? graph.OutWeights(u)[i]
                             : 1.0;
        votes[label[static_cast<size_t>(out[i])]] += w;
      }
      for (NodeId v : graph.InNeighbors(u)) {
        const double w = options.use_weights && graph.has_weights()
                             ? graph.EdgeWeight(v, u)
                             : 1.0;
        votes[label[static_cast<size_t>(v)]] += w;
      }
      if (votes.empty()) continue;  // isolated node keeps its own label
      int32_t best_label = label[static_cast<size_t>(u)];
      double best_votes = -1.0;
      for (const auto& [lbl, weight] : votes) {
        if (weight > best_votes ||
            (weight == best_votes && lbl < best_label)) {
          best_votes = weight;
          best_label = lbl;
        }
      }
      if (best_label != label[static_cast<size_t>(u)]) {
        label[static_cast<size_t>(u)] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Compact labels to [0, num_bubbles).
  BubbleAssignment out;
  out.bubble_of.resize(static_cast<size_t>(n));
  std::unordered_map<int32_t, int32_t> compact;
  for (NodeId u = 0; u < n; ++u) {
    const auto [it, inserted] = compact.emplace(
        label[static_cast<size_t>(u)], static_cast<int32_t>(compact.size()));
    out.bubble_of[static_cast<size_t>(u)] = it->second;
  }
  out.num_bubbles = static_cast<int32_t>(compact.size());
  return out;
}

double IntraBubbleEdgeFraction(const Digraph& graph,
                               const BubbleAssignment& bubbles) {
  if (graph.num_edges() == 0) return 0.0;
  int64_t intra = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (bubbles.bubble_of[static_cast<size_t>(u)] ==
          bubbles.bubble_of[static_cast<size_t>(v)]) {
        ++intra;
      }
    }
  }
  return static_cast<double>(intra) /
         static_cast<double>(graph.num_edges());
}

std::vector<ScoredTweet> EscapeBubbleRescore(
    const std::vector<ScoredTweet>& candidates, UserId user,
    const std::vector<UserId>& author_of, const BubbleAssignment& bubbles,
    double boost) {
  SIMGRAPH_CHECK_GE(boost, 0.0);
  const int32_t user_bubble = bubbles.bubble_of[static_cast<size_t>(user)];
  std::vector<ScoredTweet> out;
  out.reserve(candidates.size());
  for (const ScoredTweet& st : candidates) {
    const UserId author = author_of[static_cast<size_t>(st.tweet)];
    const bool foreign =
        bubbles.bubble_of[static_cast<size_t>(author)] != user_bubble;
    out.push_back(
        ScoredTweet{st.tweet, foreign ? st.score * (1.0 + boost) : st.score});
  }
  std::sort(out.begin(), out.end(), [](const ScoredTweet& a,
                                       const ScoredTweet& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tweet < b.tweet;
  });
  return out;
}

double RecommendationLocality(const std::vector<ScoredTweet>& candidates,
                              UserId user,
                              const std::vector<UserId>& author_of,
                              const BubbleAssignment& bubbles) {
  if (candidates.empty()) return 0.0;
  const int32_t user_bubble = bubbles.bubble_of[static_cast<size_t>(user)];
  int64_t local = 0;
  for (const ScoredTweet& st : candidates) {
    const UserId author = author_of[static_cast<size_t>(st.tweet)];
    if (bubbles.bubble_of[static_cast<size_t>(author)] == user_bubble) {
      ++local;
    }
  }
  return static_cast<double>(local) /
         static_cast<double>(candidates.size());
}

}  // namespace simgraph
