#ifndef SIMGRAPH_CORE_TOPIC_SIMILARITY_H_
#define SIMGRAPH_CORE_TOPIC_SIMILARITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/simgraph.h"
#include "core/similarity.h"
#include "dataset/dataset.h"

namespace simgraph {

/// Topic-level user profiles — the paper's future-work direction of
/// Section 7: "our similarity is based on common retweets ... and can be
/// improved by creating 'topic tweets' by merging similar tweets. This
/// will make users likely to be similar ... and therefore enhance results
/// for small users."
///
/// Every retweet contributes one count to the topic of the retweeted
/// post (topics stand in for the entity-recognition clustering the paper
/// envisions). Two users who never co-retweeted the same post can still
/// be similar when they retweet the same topics. Topic-level similarity
/// is Definition 3.1 applied to "topic tweets": the shared items are
/// topics, weighted by 1/log(1 + m(topic)) with m(topic) the topic's
/// total retweet count, normalised by the topic-set union.
class TopicProfileStore {
 public:
  /// A (topic, count) entry of a user's topic profile.
  struct TopicCount {
    int32_t topic;
    int32_t count;
  };

  /// Builds topic profiles from the first `event_end` retweets.
  TopicProfileStore(const Dataset& dataset, int64_t event_end);

  int32_t num_users() const {
    return static_cast<int32_t>(offsets_.size() - 1);
  }

  /// The user's (topic, count) entries, ascending by topic.
  std::span<const TopicCount> Profile(UserId u) const {
    return {entries_.data() + offsets_[static_cast<size_t>(u)],
            entries_.data() + offsets_[static_cast<size_t>(u) + 1]};
  }

  /// Total retweets of `topic` in the window (the popularity of the
  /// merged "topic tweet").
  int64_t TopicPopularity(int32_t topic) const;

  /// Definition 3.1 over topic tweets; 0 when either profile is empty,
  /// 1 when u == v (by convention, mirroring ProfileStore::Similarity).
  double TopicSimilarity(UserId u, UserId v) const;

 private:
  std::vector<int64_t> offsets_;
  std::vector<TopicCount> entries_;
  std::vector<int64_t> topic_popularity_;  // total retweets per topic
};

/// Parameters of the topic-enhanced similarity graph.
struct HybridSimGraphOptions {
  /// Base SimGraph construction parameters (tau applies to the blended
  /// score).
  SimGraphOptions base;
  /// Blend weight: sim = (1-alpha) * tweet_jaccard + alpha * topic_jaccard.
  /// alpha = 0 reproduces the plain SimGraph.
  double alpha = 0.3;
};

/// Blended similarity of Section 7's proposal.
double HybridSimilarity(const ProfileStore& profiles,
                        const TopicProfileStore& topics, UserId u, UserId v,
                        double alpha);

/// Builds the SimGraph with the blended similarity. Candidates are the
/// full 2-hop neighbourhood (the inverted-index shortcut does not apply:
/// topic similarity can be positive without any co-retweet).
SimGraph BuildHybridSimGraph(const Digraph& follow_graph,
                             const ProfileStore& profiles,
                             const TopicProfileStore& topics,
                             const HybridSimGraphOptions& options);

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_TOPIC_SIMILARITY_H_
