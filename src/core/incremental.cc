#include "core/incremental.h"

#include <algorithm>
#include <cmath>

#include "core/similarity.h"
#include "graph/graph_builder.h"
#include "util/logging.h"

namespace simgraph {

MutableProfileStore::MutableProfileStore(int32_t num_users,
                                         int64_t num_tweets)
    : profiles_(static_cast<size_t>(num_users)),
      retweeters_(static_cast<size_t>(num_tweets)),
      popularity_(static_cast<size_t>(num_tweets), 0) {}

void MutableProfileStore::Apply(const RetweetEvent& event) {
  auto& profile = profiles_[static_cast<size_t>(event.user)];
  const auto it =
      std::lower_bound(profile.begin(), profile.end(), event.tweet);
  if (it != profile.end() && *it == event.tweet) return;  // duplicate
  if (event.tweet >= static_cast<int64_t>(popularity_.size())) {
    // New posts stream in continuously while serving; grow geometrically
    // so a monotone id sequence stays amortised O(1) per event.
    const size_t grown =
        std::max(static_cast<size_t>(event.tweet) + 1,
                 popularity_.size() + popularity_.size() / 2);
    retweeters_.resize(grown);
    popularity_.resize(grown, 0);
  }
  profile.insert(it, event.tweet);
  retweeters_[static_cast<size_t>(event.tweet)].push_back(event.user);
  ++popularity_[static_cast<size_t>(event.tweet)];
}

const std::vector<UserId>& MutableProfileStore::Retweeters(TweetId t) const {
  static const std::vector<UserId> kEmpty;
  const size_t i = static_cast<size_t>(t);
  return i < retweeters_.size() ? retweeters_[i] : kEmpty;
}

double MutableProfileStore::Similarity(UserId u, UserId v) const {
  if (u == v) return 1.0;
  const auto& lu = profiles_[static_cast<size_t>(u)];
  const auto& lv = profiles_[static_cast<size_t>(v)];
  if (lu.empty() || lv.empty()) return 0.0;
  double inter_weight = 0.0;
  int64_t inter_count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i] < lv[j]) {
      ++i;
    } else if (lv[j] < lu[i]) {
      ++j;
    } else {
      const int32_t m = popularity_[static_cast<size_t>(lu[i])];
      if (m > 0) inter_weight += 1.0 / std::log(1.0 + m);
      ++inter_count;
      ++i;
      ++j;
    }
  }
  if (inter_count == 0) return 0.0;
  const int64_t union_size =
      static_cast<int64_t>(lu.size() + lv.size()) - inter_count;
  return inter_weight / static_cast<double>(union_size);
}

IncrementalSimGraph::IncrementalSimGraph(const Digraph& follow_graph,
                                         const SimGraphOptions& options)
    : follow_graph_(&follow_graph), options_(options) {
  SIMGRAPH_CHECK_GT(options.tau, 0.0);
}

Status IncrementalSimGraph::Initialize(const Dataset& dataset,
                                       int64_t event_end) {
  if (event_end < 0 || event_end > dataset.num_retweets()) {
    return Status::InvalidArgument("event_end out of range");
  }
  if (dataset.num_users() != follow_graph_->num_nodes()) {
    return Status::InvalidArgument(
        "dataset user space does not match follow graph");
  }
  profiles_ = std::make_unique<MutableProfileStore>(dataset.num_users(),
                                                    dataset.num_tweets());
  for (int64_t i = 0; i < event_end; ++i) {
    profiles_->Apply(dataset.retweets[static_cast<size_t>(i)]);
  }

  // Seed the adjacency with the batch-built graph so Initialize(X) is
  // bit-identical to BuildSimGraph over the same prefix.
  ProfileStore batch_profiles(dataset, event_end);
  const SimGraph seed =
      BuildSimGraph(*follow_graph_, batch_profiles, options_);
  adjacency_.assign(static_cast<size_t>(dataset.num_users()), {});
  reverse_.assign(static_cast<size_t>(dataset.num_users()), {});
  num_edges_ = 0;
  for (NodeId u = 0; u < seed.graph.num_nodes(); ++u) {
    const auto nbrs = seed.graph.OutNeighbors(u);
    const auto weights = seed.graph.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      adjacency_[static_cast<size_t>(u)].emplace(nbrs[i], weights[i]);
      reverse_[static_cast<size_t>(nbrs[i])].insert(u);
      ++num_edges_;
    }
  }
  stats_ = IncrementalStats{};
  ++version_;
  return Status::Ok();
}

bool IncrementalSimGraph::WithinHops(UserId u, UserId w) const {
  if (u == w) return false;
  // hops is 2 in every paper configuration; generalise with a bounded
  // scan: direct edge, else any followee of u follows w.
  if (follow_graph_->HasEdge(u, w)) return true;
  if (options_.hops < 2) return false;
  for (NodeId mid : follow_graph_->OutNeighbors(u)) {
    if (follow_graph_->HasEdge(mid, w)) return true;
  }
  SIMGRAPH_CHECK_LE(options_.hops, 2)
      << "incremental maintenance supports hops <= 2";
  return false;
}

void IncrementalSimGraph::RescoreEdge(UserId u, UserId v) {
  ++stats_.pairs_rescored;
  const double sim = profiles_->Similarity(u, v);
  auto& row = adjacency_[static_cast<size_t>(u)];
  const auto it = row.find(v);
  if (sim >= options_.tau) {
    if (it == row.end()) {
      row.emplace(v, sim);
      reverse_[static_cast<size_t>(v)].insert(u);
      ++num_edges_;
      ++stats_.edges_inserted;
      if (record_ != nullptr) {
        record_->edge_upserts.push_back({u, v, sim});
      }
    } else {
      if (record_ != nullptr && it->second != sim) {
        record_->edge_upserts.push_back({u, v, sim});
      }
      it->second = sim;
      ++stats_.edges_updated;
    }
  } else if (it != row.end()) {
    row.erase(it);
    reverse_[static_cast<size_t>(v)].erase(u);
    --num_edges_;
    ++stats_.edges_dropped;
    if (record_ != nullptr) record_->edge_removes.push_back({u, v});
  }
}

void IncrementalSimGraph::Apply(const RetweetEvent& event,
                                SimGraphDelta* delta) {
  SIMGRAPH_CHECK(profiles_ != nullptr) << "Initialize must be called first";
  record_ = delta;
  ++stats_.events_applied;
  ++version_;
  // Snapshot co-retweeters before adding the event (the new user is not
  // their own peer).
  const std::vector<UserId> peers = profiles_->Retweeters(event.tweet);
  profiles_->Apply(event);

  const UserId u = event.user;
  for (UserId v : peers) {
    if (v == u) continue;
    // Definition 4.1 in both directions: u->v needs v in N2(u), v->u
    // needs u in N2(v).
    if (WithinHops(u, v)) RescoreEdge(u, v);
    if (WithinHops(v, u)) RescoreEdge(v, u);
  }
  // The event changed |L_u|, so every edge incident to u is stale:
  // refresh them too (cost O(deg(u)), keeps u's neighbourhood exact).
  std::vector<UserId> out_targets;
  for (const auto& [v, w] : adjacency_[static_cast<size_t>(u)]) {
    out_targets.push_back(v);
  }
  for (UserId v : out_targets) RescoreEdge(u, v);
  const std::vector<UserId> in_sources(
      reverse_[static_cast<size_t>(u)].begin(),
      reverse_[static_cast<size_t>(u)].end());
  for (UserId v : in_sources) RescoreEdge(v, u);
  if (record_ != nullptr) record_->graph_version = version_;
  record_ = nullptr;
}

SimGraph IncrementalSimGraph::Snapshot() const {
  SIMGRAPH_CHECK(profiles_ != nullptr) << "Initialize must be called first";
  GraphBuilder builder(follow_graph_->num_nodes());
  for (NodeId u = 0; u < follow_graph_->num_nodes(); ++u) {
    for (const auto& [v, w] : adjacency_[static_cast<size_t>(u)]) {
      builder.AddEdge(u, v, w);
    }
  }
  SimGraph sg;
  sg.graph = builder.Build(/*weighted=*/true);
  // Prime the cached present-node count while the snapshot is still
  // thread-private; readers then never pay the O(n) scan.
  sg.NumPresentNodes();
  return sg;
}

}  // namespace simgraph
