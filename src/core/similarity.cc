#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace simgraph {

ProfileStore::ProfileStore(const Dataset& dataset, int64_t event_end) {
  SIMGRAPH_CHECK_GE(event_end, 0);
  SIMGRAPH_CHECK_LE(event_end, dataset.num_retweets());
  const size_t num_users = static_cast<size_t>(dataset.num_users());
  const size_t num_tweets = static_cast<size_t>(dataset.num_tweets());

  popularity_.assign(num_tweets, 0);
  std::vector<int64_t> user_counts(num_users, 0);
  for (int64_t i = 0; i < event_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    ++popularity_[static_cast<size_t>(e.tweet)];
    ++user_counts[static_cast<size_t>(e.user)];
  }

  // Profiles (user -> tweets).
  profile_offsets_.assign(num_users + 1, 0);
  for (size_t u = 0; u < num_users; ++u) {
    profile_offsets_[u + 1] = profile_offsets_[u] + user_counts[u];
  }
  profile_tweets_.resize(static_cast<size_t>(profile_offsets_.back()));
  {
    std::vector<int64_t> cursor(profile_offsets_.begin(),
                                profile_offsets_.end() - 1);
    for (int64_t i = 0; i < event_end; ++i) {
      const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
      profile_tweets_[static_cast<size_t>(
          cursor[static_cast<size_t>(e.user)]++)] = e.tweet;
    }
  }
  for (size_t u = 0; u < num_users; ++u) {
    std::sort(profile_tweets_.begin() + profile_offsets_[u],
              profile_tweets_.begin() + profile_offsets_[u + 1]);
  }

  // Inverted index (tweet -> users).
  index_offsets_.assign(num_tweets + 1, 0);
  for (size_t t = 0; t < num_tweets; ++t) {
    index_offsets_[t + 1] = index_offsets_[t] + popularity_[t];
  }
  index_users_.resize(static_cast<size_t>(index_offsets_.back()));
  {
    std::vector<int64_t> cursor(index_offsets_.begin(),
                                index_offsets_.end() - 1);
    for (int64_t i = 0; i < event_end; ++i) {
      const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
      index_users_[static_cast<size_t>(
          cursor[static_cast<size_t>(e.tweet)]++)] = e.user;
    }
  }
  for (size_t t = 0; t < num_tweets; ++t) {
    std::sort(index_users_.begin() + index_offsets_[t],
              index_users_.begin() + index_offsets_[t + 1]);
  }
}

double ProfileStore::TweetWeight(TweetId i) const {
  const int32_t m = popularity_[static_cast<size_t>(i)];
  if (m == 0) return 0.0;
  return 1.0 / std::log(1.0 + static_cast<double>(m));
}

double ProfileStore::Similarity(UserId u, UserId v) const {
  if (u == v) return 1.0;
  const auto lu = Profile(u);
  const auto lv = Profile(v);
  if (lu.empty() || lv.empty()) return 0.0;
  double inter_weight = 0.0;
  int64_t inter_count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i] < lv[j]) {
      ++i;
    } else if (lv[j] < lu[i]) {
      ++j;
    } else {
      inter_weight += TweetWeight(lu[i]);
      ++inter_count;
      ++i;
      ++j;
    }
  }
  if (inter_count == 0) return 0.0;
  const int64_t union_size =
      static_cast<int64_t>(lu.size() + lv.size()) - inter_count;
  return inter_weight / static_cast<double>(union_size);
}

std::vector<std::pair<UserId, double>> ProfileStore::SimilaritiesOf(
    UserId u) const {
  struct Acc {
    double weight = 0.0;
    int64_t count = 0;
  };
  std::unordered_map<UserId, Acc> acc;
  const auto lu = Profile(u);
  for (TweetId i : lu) {
    const double w = TweetWeight(i);
    for (UserId v : Retweeters(i)) {
      if (v == u) continue;
      Acc& a = acc[v];
      a.weight += w;
      ++a.count;
    }
  }
  std::vector<std::pair<UserId, double>> out;
  out.reserve(acc.size());
  const int64_t lu_size = static_cast<int64_t>(lu.size());
  for (const auto& [v, a] : acc) {
    const int64_t union_size = lu_size + ProfileSize(v) - a.count;
    if (union_size > 0 && a.weight > 0.0) {
      out.emplace_back(v, a.weight / static_cast<double>(union_size));
    }
  }
  return out;
}

}  // namespace simgraph
