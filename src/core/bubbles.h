#ifndef SIMGRAPH_CORE_BUBBLES_H_
#define SIMGRAPH_CORE_BUBBLES_H_

#include <cstdint>
#include <vector>

#include "core/recommender.h"
#include "graph/digraph.h"

namespace simgraph {

/// Information-bubble analysis — the paper's second future-work direction
/// (Section 7): "recommended information is generally originated from the
/// same sub-part of the graph. We are currently working on the
/// identification of bubbles ... then we will propose a complementary
/// score for recommendations by escaping from information locality."
///
/// Bubbles are detected with synchronous label propagation over the
/// undirected view of a (similarity) graph; isolated nodes keep their own
/// singleton label.
struct BubbleAssignment {
  /// bubble_of[u] in [0, num_bubbles); singletons included.
  std::vector<int32_t> bubble_of;
  int32_t num_bubbles = 0;

  /// Sizes per bubble id.
  std::vector<int64_t> BubbleSizes() const;
  /// Size of the largest bubble.
  int64_t LargestBubble() const;
};

/// Options for label-propagation bubble detection.
struct BubbleOptions {
  int32_t max_iterations = 20;
  /// Edge weights (similarities) weigh the label votes when present.
  bool use_weights = true;
  uint64_t seed = 17;
};

/// Detects bubbles on `graph` (typically the SimGraph).
BubbleAssignment DetectBubbles(const Digraph& graph,
                               const BubbleOptions& options);

/// Fraction of graph edges that stay inside one bubble; high values mean
/// recommendations propagate locally (the "information bubble" effect).
double IntraBubbleEdgeFraction(const Digraph& graph,
                               const BubbleAssignment& bubbles);

/// Complementary diversity score of Section 7: rescores candidates so
/// posts originating outside the user's bubble get a boost.
///
///   score' = score * (1 + boost)   when bubble(author) != bubble(user)
///
/// `author_of[t]` maps tweets to authors. Returns the re-ranked list
/// (descending by the adjusted score; the adjusted scores are returned).
std::vector<ScoredTweet> EscapeBubbleRescore(
    const std::vector<ScoredTweet>& candidates, UserId user,
    const std::vector<UserId>& author_of, const BubbleAssignment& bubbles,
    double boost);

/// Share of `candidates` whose author sits in the same bubble as `user`
/// (1.0 = fully local recommendations).
double RecommendationLocality(const std::vector<ScoredTweet>& candidates,
                              UserId user,
                              const std::vector<UserId>& author_of,
                              const BubbleAssignment& bubbles);

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_BUBBLES_H_
