#ifndef SIMGRAPH_CORE_PROPAGATION_H_
#define SIMGRAPH_CORE_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "core/simgraph.h"
#include "dataset/types.h"
#include "solver/sparse_matrix.h"
#include "util/status.h"

namespace simgraph {

/// Dynamic propagation threshold gamma(t) of Section 5.4: a Hill function
/// of the tweet's popularity m(t),
///
///   gamma(t) = m(t)^p / (k^p + m(t)^p)
///
/// close to 0 for fresh/unpopular tweets (propagate eagerly, recommend
/// early) and close to 1 for already-popular ones (stop early, they are
/// everywhere anyway).
struct DynamicThreshold {
  bool enabled = false;
  double k = 50.0;
  double p = 2.0;

  /// Evaluates gamma for popularity `m`, scaled into an absolute score
  /// threshold by `scale` (gamma itself lies in [0,1] which would swamp
  /// typical scores; scale maps it onto the score magnitude range).
  double Evaluate(int64_t m) const;
};

/// Parameters of the iterative propagation (Algorithm 1 + Section 5.4).
struct PropagationOptions {
  /// Convergence: stop when no score changes by more than this between
  /// iterations (the paper's "no probabilities change", made float-safe).
  double epsilon = 1e-9;
  /// Static threshold beta: a user whose score changed by less than beta
  /// stops propagating to his followers. 0 disables the optimisation.
  double beta = 0.0;
  /// Dynamic popularity-based threshold gamma(t); when enabled it
  /// overrides beta with gamma(t) * dynamic_scale.
  DynamicThreshold dynamic;
  /// Scale applied to gamma(t) to turn it into a score threshold.
  double dynamic_scale = 1e-3;
  int32_t max_iterations = 100;
};

/// One user's propagated score.
struct UserScore {
  UserId user = kInvalidNode;
  double score = 0.0;
};

/// Result of propagating one tweet through the similarity graph.
struct PropagationResult {
  /// Non-zero scores for users not in the seed set D, unsorted.
  std::vector<UserScore> scores;
  int32_t iterations = 0;
  /// Number of score updates applied (work measure for the ablations).
  int64_t updates = 0;
  bool converged = false;
};

/// Iterative propagation engine over a SimGraph (Algorithm 1).
///
/// Given the seed set D of users who retweeted tweet t (p(v,t) = 1 for
/// v in D, fixed), repeatedly sets for every other user u
///
///   p(u,t) = ( sum_{v in Fu} p(v,t) * sim(u,v) ) / |Fu|
///
/// where Fu are u's influential users (out-neighbours in the SimGraph),
/// until no score moves by more than epsilon. The implementation is
/// frontier-based: only users whose inputs changed are re-evaluated, which
/// is what makes per-message propagation cheap (Table 5's 38 ms/message at
/// the paper's scale).
class Propagator {
 public:
  /// The SimGraph must outlive the propagator.
  explicit Propagator(const SimGraph& sim_graph);

  /// Propagates from the seed set `seeds` (users with p = 1). Duplicate
  /// seeds are ignored. `popularity` is m(t), used by the dynamic
  /// threshold (pass seeds.size() when in doubt).
  PropagationResult Propagate(const std::vector<UserId>& seeds,
                              int64_t popularity,
                              const PropagationOptions& options) const;

  /// Propagates many messages concurrently on `pool` (the paper processes
  /// the message stream on 70 cores). results[i] corresponds to
  /// seed_sets[i]; identical to calling Propagate per set.
  std::vector<PropagationResult> PropagateBatch(
      const std::vector<std::vector<UserId>>& seed_sets,
      const PropagationOptions& options, ThreadPool& pool) const;

  const SimGraph& sim_graph() const { return *sim_graph_; }

 private:
  const SimGraph* sim_graph_;
};

/// Builds the linear system A p = b of Section 5.2 restricted to the
/// subgraph reachable (against edge direction) from the seeds:
///   a_ii = 1,
///   a_ij = -sim(u_i, u_j)/|F_{u_i}| for SimGraph edges u_i -> u_j,
///   b_i  = 1 if u_i retweeted t else 0.
/// Seed rows are clamped (identity row, b = 1) so the solution matches the
/// iterative algorithm, which never re-computes seed scores.
/// `users` receives the user id of each matrix row.
SparseMatrix BuildPropagationSystem(const SimGraph& sim_graph,
                                    const std::vector<UserId>& seeds,
                                    std::vector<UserId>* users,
                                    std::vector<double>* b);

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_PROPAGATION_H_
