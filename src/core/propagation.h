#ifndef SIMGRAPH_CORE_PROPAGATION_H_
#define SIMGRAPH_CORE_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "core/simgraph.h"
#include "dataset/types.h"
#include "solver/sparse_matrix.h"
#include "util/status.h"

namespace simgraph {

/// Dynamic propagation threshold gamma(t) of Section 5.4: a Hill function
/// of the tweet's popularity m(t),
///
///   gamma(t) = m(t)^p / (k^p + m(t)^p)
///
/// close to 0 for fresh/unpopular tweets (propagate eagerly, recommend
/// early) and close to 1 for already-popular ones (stop early, they are
/// everywhere anyway).
struct DynamicThreshold {
  bool enabled = false;
  double k = 50.0;
  double p = 2.0;

  /// Evaluates gamma for popularity `m`, scaled into an absolute score
  /// threshold by `scale` (gamma itself lies in [0,1] which would swamp
  /// typical scores; scale maps it onto the score magnitude range).
  double Evaluate(int64_t m) const;
};

/// How the gather-multiply-add inner loop accumulates neighbour scores.
enum class AccumulateMode {
  /// Strictly sequential adds in neighbour order — bit-identical to
  /// ReferencePropagate. The default; every production path uses it.
  kExact,
  /// Four interleaved partial sums (lane j owns elements i ≡ j mod 4),
  /// combined as (l0+l1)+(l2+l3). Reassociates the reduction, so results
  /// can differ from kExact by floating-point rounding only (tested to a
  /// 1e-9 relative tolerance vs ReferencePropagate). On x86-64 with
  /// AVX2+FMA the lanes run as vector gather intrinsics behind a runtime
  /// CPU-dispatch guard; elsewhere as an unrolled scalar loop.
  kLanes,
};

/// Parameters of the iterative propagation (Algorithm 1 + Section 5.4).
struct PropagationOptions {
  /// Convergence: stop when no score changes by more than this between
  /// iterations (the paper's "no probabilities change", made float-safe).
  double epsilon = 1e-9;
  /// Static threshold beta: a user whose score changed by less than beta
  /// stops propagating to his followers. 0 disables the optimisation.
  double beta = 0.0;
  /// Dynamic popularity-based threshold gamma(t); when enabled it
  /// overrides beta with gamma(t) * dynamic_scale.
  DynamicThreshold dynamic;
  /// Scale applied to gamma(t) to turn it into a score threshold.
  double dynamic_scale = 1e-3;
  int32_t max_iterations = 100;
  /// Inner-loop accumulation strategy; kExact is bit-identical to the
  /// reference, kLanes trades that for SIMD throughput (see AccumulateMode).
  AccumulateMode accumulate = AccumulateMode::kExact;
};

/// One user's propagated score.
struct UserScore {
  UserId user = kInvalidNode;
  double score = 0.0;
};

/// Result of propagating one tweet through the similarity graph.
struct PropagationResult {
  /// Non-zero scores for users not in the seed set D, sorted by user id.
  std::vector<UserScore> scores;
  int32_t iterations = 0;
  /// Number of score updates applied (work measure for the ablations).
  int64_t updates = 0;
  bool converged = false;
};

class Propagator;
class PropagationScratch;

namespace internal {
/// True when AccumulateMode::kLanes runs as AVX2+FMA gather intrinsics on
/// this machine (runtime CPU dispatch); false when it falls back to the
/// unrolled scalar lanes. Exposed so tests and benches can report which
/// path they exercised.
bool LanesUseVectorGather();
}  // namespace internal

/// Builds the linear system A p = b of Section 5.2 restricted to the
/// subgraph reachable (against edge direction) from the seeds:
///   a_ii = 1,
///   a_ij = -sim(u_i, u_j)/|F_{u_i}| for SimGraph edges u_i -> u_j,
///   b_i  = 1 if u_i retweeted t else 0.
/// Seed rows are clamped (identity row, b = 1) so the solution matches the
/// iterative algorithm, which never re-computes seed scores.
/// `users` receives the user id of each matrix row. Pass a
/// PropagationScratch to reuse the seed/row membership arrays across
/// calls; with nullptr a call-local scratch is used.
SparseMatrix BuildPropagationSystem(const SimGraph& sim_graph,
                                    const std::vector<UserId>& seeds,
                                    std::vector<UserId>* users,
                                    std::vector<double>* b,
                                    PropagationScratch* scratch = nullptr);

/// Reusable dense workspace for the propagation kernel.
///
/// The original implementation built fresh `unordered_set`/`unordered_map`
/// instances per Propagate call and per iteration; at serving rates that
/// hashing and allocation dominated the ingest hot path. The scratch
/// replaces every hash container with flat arrays sized to the graph's
/// node count, invalidated in O(1) by bumping a 32-bit epoch instead of
/// clearing:
///
///   * seed membership        -> seed_stamp_[u] == run_epoch_
///   * sparse score map       -> score_[u], valid iff
///                               score_stamp_[u] == run_epoch_
///   * per-iteration affected -> gen_stamp_[u] == gen_epoch_
///     dedup                     (gen_epoch_ bumps every iteration)
///   * BuildPropagationSystem -> row_[u], valid iff
///     row map                   score_stamp_[u] == run_epoch_
///
/// The gather inner loop additionally reads a dense `value_` array holding
/// every node's effective score (seeds pinned at 1.0, scored nodes at
/// their latest score, everything else 0.0). Raw doubles cannot be
/// epoch-stamped, so PropagateInto maintains the all-zero-between-runs
/// invariant itself: it writes seeds/scores during the run and re-zeroes
/// exactly the touched entries before returning. That turns the hot
/// accumulate loop into a branch-free contiguous gather
/// (value[nbr] * weight) instead of three dependent stamped loads per
/// neighbour — the layout SIMD gathers want.
///
/// plus reusable frontier/update/touched vectors whose capacity sticks
/// across calls. After a warm-up call on a given graph, Propagate with
/// the same scratch performs zero heap allocations
/// (tests/core/propagation_alloc_test.cc asserts this).
///
/// A scratch is single-threaded state: one per worker/applier thread.
/// It may be reused freely across Propagator instances and graphs of any
/// size (the arrays grow monotonically). Epoch wraparound — once every
/// 2^32 - 1 runs — triggers a full O(n) stamp clear, counted by
/// epoch_resets() and the propagation.scratch.epoch_resets metric.
class PropagationScratch {
 public:
  PropagationScratch() = default;
  PropagationScratch(const PropagationScratch&) = delete;
  PropagationScratch& operator=(const PropagationScratch&) = delete;
  PropagationScratch(PropagationScratch&&) = default;
  PropagationScratch& operator=(PropagationScratch&&) = default;

  /// Grows the dense arrays to cover `num_nodes` nodes (never shrinks).
  /// Propagate calls this automatically; calling it up front merely
  /// front-loads the allocation.
  void Reserve(NodeId num_nodes);

  /// Bytes currently held by the dense arrays and reusable vectors.
  int64_t MemoryBytes() const;

  /// Number of O(n) epoch-wraparound clears performed so far.
  int64_t epoch_resets() const { return epoch_resets_; }

 private:
  friend class Propagator;
  friend SparseMatrix BuildPropagationSystem(const SimGraph&,
                                             const std::vector<UserId>&,
                                             std::vector<UserId>*,
                                             std::vector<double>*,
                                             PropagationScratch*);

  /// Starts a new run: grows the arrays and bumps the run epoch.
  void BeginRun(NodeId num_nodes);
  /// Starts a new dedup generation (one per iteration) within a run.
  uint32_t BeginGeneration();

  bool IsSeed(NodeId u) const {
    return seed_stamp_[static_cast<size_t>(u)] == run_epoch_;
  }
  void MarkSeed(NodeId u) {
    seed_stamp_[static_cast<size_t>(u)] = run_epoch_;
  }
  bool HasScore(NodeId u) const {
    return score_stamp_[static_cast<size_t>(u)] == run_epoch_;
  }
  /// Score under the seeds-pinned-at-1 convention of Algorithm 1.
  double ScoreOf(NodeId u) const {
    if (IsSeed(u)) return 1.0;
    return HasScore(u) ? score_[static_cast<size_t>(u)] : 0.0;
  }

  std::vector<double> score_;
  std::vector<double> value_;  // dense gather array; all-zero between runs
  std::vector<uint32_t> score_stamp_;
  std::vector<uint32_t> seed_stamp_;
  std::vector<uint32_t> gen_stamp_;
  std::vector<int32_t> row_;  // BuildPropagationSystem row indices
  std::vector<UserId> frontier_;
  std::vector<UserId> next_frontier_;
  std::vector<UserId> affected_;
  std::vector<UserId> seeds_;    // deduped seeds of the current run
  std::vector<double> update_;   // parallel to affected_
  std::vector<UserId> touched_;  // users scored this run, insertion order
  uint32_t run_epoch_ = 0;  // 0 is never valid: fresh stamps are 0
  uint32_t gen_epoch_ = 0;
  int64_t epoch_resets_ = 0;
};

/// Iterative propagation engine over a SimGraph (Algorithm 1).
///
/// Given the seed set D of users who retweeted tweet t (p(v,t) = 1 for
/// v in D, fixed), repeatedly sets for every other user u
///
///   p(u,t) = ( sum_{v in Fu} p(v,t) * sim(u,v) ) / |Fu|
///
/// where Fu are u's influential users (out-neighbours in the SimGraph),
/// until no score moves by more than epsilon. The implementation is
/// frontier-based: only users whose inputs changed are re-evaluated, which
/// is what makes per-message propagation cheap (Table 5's 38 ms/message at
/// the paper's scale). The kernel is allocation-free in steady state when
/// the caller supplies a warm PropagationScratch.
class Propagator {
 public:
  /// The SimGraph must outlive the propagator.
  explicit Propagator(const SimGraph& sim_graph);

  /// Propagates from the seed set `seeds` (users with p = 1). Duplicate
  /// seeds are ignored. `popularity` is m(t), used by the dynamic
  /// threshold (pass seeds.size() when in doubt). This convenience
  /// overload allocates a call-local scratch; hot paths should hold a
  /// PropagationScratch and use the overloads below.
  PropagationResult Propagate(const std::vector<UserId>& seeds,
                              int64_t popularity,
                              const PropagationOptions& options) const;

  /// Same, reusing `scratch` (the result vector is still fresh per call).
  PropagationResult Propagate(const std::vector<UserId>& seeds,
                              int64_t popularity,
                              const PropagationOptions& options,
                              PropagationScratch& scratch) const;

  /// The zero-allocation form: reuses both `scratch` and `result`
  /// (cleared and refilled; its capacity sticks across calls). This is
  /// the per-event ingest hot path of the serving layer.
  void PropagateInto(const std::vector<UserId>& seeds, int64_t popularity,
                     const PropagationOptions& options,
                     PropagationScratch& scratch,
                     PropagationResult* result) const;

  /// Propagates many messages concurrently on `pool` (the paper processes
  /// the message stream on 70 cores). results[i] corresponds to
  /// seed_sets[i]; identical to calling Propagate per set. Each pool
  /// worker reuses one PropagationScratch across all its chunks.
  std::vector<PropagationResult> PropagateBatch(
      const std::vector<std::vector<UserId>>& seed_sets,
      const PropagationOptions& options, ThreadPool& pool) const;

  const SimGraph& sim_graph() const { return *sim_graph_; }

 private:
  const SimGraph* sim_graph_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_PROPAGATION_H_
