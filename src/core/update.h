#ifndef SIMGRAPH_CORE_UPDATE_H_
#define SIMGRAPH_CORE_UPDATE_H_

#include <string>
#include <string_view>

#include "core/simgraph.h"
#include "core/simgraph_recommender.h"
#include "dataset/dataset.h"

namespace simgraph {

/// The four graph-maintenance strategies compared in Figure 16. The graph
/// is initially built after `old_end` retweet actions; the strategies
/// differ in how it is refreshed once `new_end` actions are known.
enum class UpdateStrategy {
  /// Rebuild entirely from the follow graph with profiles at new_end
  /// (best quality, full cost).
  kFromScratch,
  /// Keep the graph built at old_end untouched.
  kOldSimGraph,
  /// Re-run the SimGraph construction, but explore the *old SimGraph*
  /// (2-hop) instead of the follow graph, scoring with profiles at
  /// new_end. Densifies the graph and refreshes weights at a fraction of
  /// the from-scratch cost.
  kCrossfold,
  /// Keep the old topology; recompute only the edge weights with profiles
  /// at new_end.
  kWeightUpdate,
};

std::string_view UpdateStrategyName(UpdateStrategy strategy);

/// Builds the similarity graph according to `strategy`. `old_end` and
/// `new_end` are retweet-event indices (old_end <= new_end); `options`
/// configures tau/hops exactly as for BuildSimGraph.
SimGraph BuildWithStrategy(UpdateStrategy strategy, const Dataset& dataset,
                           int64_t old_end, int64_t new_end,
                           const SimGraphOptions& options);

/// Recomputes the weights of `graph`'s edges using `profiles` while
/// keeping the topology fixed (the kWeightUpdate primitive, exposed for
/// testing).
SimGraph RecomputeWeights(const SimGraph& graph, const ProfileStore& profiles);

/// A SimGraphRecommender whose similarity graph is produced by an update
/// strategy instead of a plain from-scratch build: Train(dataset, end)
/// first trains normally, then swaps in BuildWithStrategy(strategy,
/// dataset, old_end, end). Lets the Figure 16 study run through the
/// standard evaluation harness (which owns the Train call).
class UpdateStrategyRecommender : public SimGraphRecommender {
 public:
  UpdateStrategyRecommender(UpdateStrategy strategy, int64_t old_end,
                            SimGraphRecommenderOptions options);

  std::string name() const override;
  Status Train(const Dataset& dataset, int64_t train_end) override;

 private:
  UpdateStrategy strategy_;
  int64_t old_end_;
  SimGraphOptions graph_options_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_UPDATE_H_
