#include "core/topic_similarity.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>

#include "graph/bfs.h"
#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace simgraph {

TopicProfileStore::TopicProfileStore(const Dataset& dataset,
                                     int64_t event_end) {
  SIMGRAPH_CHECK_GE(event_end, 0);
  SIMGRAPH_CHECK_LE(event_end, dataset.num_retweets());
  const size_t num_users = static_cast<size_t>(dataset.num_users());

  // Per-user topic counts, gathered in sorted maps then flattened to CSR.
  std::vector<std::map<int32_t, int32_t>> counts(num_users);
  for (int64_t i = 0; i < event_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    const int32_t topic = dataset.tweets[static_cast<size_t>(e.tweet)].topic;
    ++counts[static_cast<size_t>(e.user)][topic];
  }

  offsets_.assign(num_users + 1, 0);
  for (size_t u = 0; u < num_users; ++u) {
    offsets_[u + 1] = offsets_[u] + static_cast<int64_t>(counts[u].size());
  }
  entries_.reserve(static_cast<size_t>(offsets_.back()));
  for (size_t u = 0; u < num_users; ++u) {
    for (const auto& [topic, count] : counts[u]) {
      entries_.push_back(TopicCount{topic, count});
      if (static_cast<size_t>(topic) >= topic_popularity_.size()) {
        topic_popularity_.resize(static_cast<size_t>(topic) + 1, 0);
      }
      topic_popularity_[static_cast<size_t>(topic)] += count;
    }
  }
}

int64_t TopicProfileStore::TopicPopularity(int32_t topic) const {
  if (topic < 0 ||
      static_cast<size_t>(topic) >= topic_popularity_.size()) {
    return 0;
  }
  return topic_popularity_[static_cast<size_t>(topic)];
}

double TopicProfileStore::TopicSimilarity(UserId u, UserId v) const {
  if (u == v) return 1.0;
  const auto pu = Profile(u);
  const auto pv = Profile(v);
  if (pu.empty() || pv.empty()) return 0.0;
  // Definition 3.1 on topic tweets: shared topics weighted by inverse log
  // popularity, normalised by the topic-set union.
  double inter_weight = 0.0;
  int64_t inter_count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < pu.size() && j < pv.size()) {
    if (pu[i].topic < pv[j].topic) {
      ++i;
    } else if (pv[j].topic < pu[i].topic) {
      ++j;
    } else {
      const int64_t m = TopicPopularity(pu[i].topic);
      if (m > 0) {
        inter_weight += 1.0 / std::log(1.0 + static_cast<double>(m));
      }
      ++inter_count;
      ++i;
      ++j;
    }
  }
  if (inter_count == 0) return 0.0;
  const int64_t union_size =
      static_cast<int64_t>(pu.size() + pv.size()) - inter_count;
  return inter_weight / static_cast<double>(union_size);
}

double HybridSimilarity(const ProfileStore& profiles,
                        const TopicProfileStore& topics, UserId u, UserId v,
                        double alpha) {
  SIMGRAPH_CHECK_GE(alpha, 0.0);
  SIMGRAPH_CHECK_LE(alpha, 1.0);
  const double jaccard = profiles.Similarity(u, v);
  if (alpha == 0.0) return jaccard;
  return (1.0 - alpha) * jaccard + alpha * topics.TopicSimilarity(u, v);
}

SimGraph BuildHybridSimGraph(const Digraph& follow_graph,
                             const ProfileStore& profiles,
                             const TopicProfileStore& topics,
                             const HybridSimGraphOptions& options) {
  SIMGRAPH_CHECK_GT(options.base.tau, 0.0);
  SIMGRAPH_TRACE_SPAN("SimGraph::BuildHybrid", "build");
  SIMGRAPH_SCOPED_LATENCY("simgraph.hybrid.build_seconds");
  WallTimer timer;

  struct WeightedEdge {
    NodeId src;
    NodeId dst;
    double weight;
  };
  const NodeId n = follow_graph.num_nodes();
  ThreadPool pool(options.base.num_threads);
  std::vector<std::vector<WeightedEdge>> shards(
      static_cast<size_t>(pool.num_threads() * 4));
  std::atomic<size_t> shard_counter{0};

  ParallelFor(pool, n, [&](int64_t begin, int64_t end) {
    auto& local = shards[shard_counter.fetch_add(1) % shards.size()];
    for (int64_t i = begin; i < end; ++i) {
      const UserId u = static_cast<UserId>(i);
      // A user needs some signal — a retweet profile or a topic profile.
      if (profiles.ProfileSize(u) == 0 && topics.Profile(u).empty()) {
        continue;
      }
      for (const HopNode& hop :
           KHopNeighborhood(follow_graph, u, options.base.hops,
                            TraversalDirection::kOut)) {
        const UserId w = hop.node;
        if (profiles.ProfileSize(w) == 0 && topics.Profile(w).empty()) {
          continue;
        }
        const double sim =
            HybridSimilarity(profiles, topics, u, w, options.alpha);
        if (sim >= options.base.tau) {
          local.push_back(WeightedEdge{u, w, sim});
        }
      }
    }
  });

  GraphBuilder builder(n);
  for (const auto& shard : shards) {
    for (const WeightedEdge& e : shard) {
      builder.AddEdge(e.src, e.dst, e.weight);
    }
  }
  SimGraph sg;
  sg.graph = builder.Build(/*weighted=*/true);
  SIMGRAPH_COUNTER_ADD("simgraph.hybrid.build.count", 1);
  SIMGRAPH_COUNTER_ADD("simgraph.hybrid.edges_kept", sg.graph.num_edges());
  SIMGRAPH_LOG(Info) << "hybrid SimGraph built: " << sg.NumPresentNodes()
                     << " present nodes, " << sg.graph.num_edges()
                     << " edges (alpha=" << options.alpha << ", tau="
                     << options.base.tau << ") in "
                     << FormatDuration(timer.ElapsedSeconds());
  return sg;
}

}  // namespace simgraph
