#ifndef SIMGRAPH_CORE_SIMILARITY_H_
#define SIMGRAPH_CORE_SIMILARITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "dataset/types.h"

namespace simgraph {

/// Retweet profiles and the popularity-adjusted Jaccard similarity of
/// Definition 3.1:
///
///   sim(u,v) = ( sum_{i in Lu ∩ Lv} 1/log(1+m(i)) ) / |Lu ∪ Lv|
///
/// where Lu is the set of tweets u retweeted and m(i) the popularity
/// (retweet count) of tweet i. Rare co-retweets weigh more than popular
/// ones, following Breese et al.
class ProfileStore {
 public:
  /// Builds profiles from the first `event_end` retweet events of
  /// `dataset` (pass dataset.num_retweets() for all). Popularities m(i)
  /// are counted over the same prefix.
  ProfileStore(const Dataset& dataset, int64_t event_end);

  int32_t num_users() const {
    return static_cast<int32_t>(profile_offsets_.size() - 1);
  }

  /// Tweets retweeted by `u`, ascending by id.
  std::span<const TweetId> Profile(UserId u) const {
    return {profile_tweets_.data() + profile_offsets_[static_cast<size_t>(u)],
            profile_tweets_.data() +
                profile_offsets_[static_cast<size_t>(u) + 1]};
  }

  int64_t ProfileSize(UserId u) const {
    return profile_offsets_[static_cast<size_t>(u) + 1] -
           profile_offsets_[static_cast<size_t>(u)];
  }

  /// Popularity m(i): number of retweets of tweet `i` within the window.
  int32_t Popularity(TweetId i) const {
    return popularity_[static_cast<size_t>(i)];
  }

  /// Users who retweeted tweet `i` within the window, ascending.
  std::span<const UserId> Retweeters(TweetId i) const {
    return {index_users_.data() + index_offsets_[static_cast<size_t>(i)],
            index_users_.data() + index_offsets_[static_cast<size_t>(i) + 1]};
  }

  /// The contribution weight 1/log(1+m(i)) of tweet `i`; 0 for tweets
  /// nobody retweeted (they cannot appear in any profile intersection).
  double TweetWeight(TweetId i) const;

  /// sim(u, v) by linear merge of the two profiles. O(|Lu| + |Lv|).
  double Similarity(UserId u, UserId v) const;

  /// Similarities of `u` against every user sharing at least one profile
  /// tweet with u, via the inverted index. Returns (user, sim) pairs with
  /// sim > 0, unsorted. Cost is proportional to the total index size of
  /// u's profile tweets.
  std::vector<std::pair<UserId, double>> SimilaritiesOf(UserId u) const;

 private:
  // CSR profiles: user -> sorted tweet ids.
  std::vector<int64_t> profile_offsets_;
  std::vector<TweetId> profile_tweets_;
  // popularity per tweet over the window.
  std::vector<int32_t> popularity_;
  // CSR inverted index: tweet -> sorted user ids.
  std::vector<int64_t> index_offsets_;
  std::vector<UserId> index_users_;
};

}  // namespace simgraph

#endif  // SIMGRAPH_CORE_SIMILARITY_H_
