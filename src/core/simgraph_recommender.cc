#include "core/simgraph_recommender.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace simgraph {

SimGraphRecommender::SimGraphRecommender(SimGraphRecommenderOptions options)
    : options_(std::move(options)) {}

Status SimGraphRecommender::Train(const Dataset& dataset, int64_t train_end) {
  if (train_end < 0 || train_end > dataset.num_retweets()) {
    return Status::InvalidArgument("train_end out of range");
  }
  ProfileStore profiles(dataset, train_end);
  follow_graph_ = &dataset.follow_graph;
  sim_graph_ = BuildSimGraph(dataset.follow_graph, profiles, options_.graph);
  propagator_ = std::make_unique<Propagator>(sim_graph_);

  std::vector<Timestamp> tweet_times;
  tweet_times.reserve(dataset.tweets.size());
  tweet_author_.clear();
  tweet_author_.reserve(dataset.tweets.size());
  for (const Tweet& t : dataset.tweets) {
    tweet_times.push_back(t.time);
    tweet_author_.push_back(t.author);
  }
  candidates_ = std::make_unique<CandidateStore>(
      dataset.num_users(), std::move(tweet_times), options_.freshness_window);

  // A user is never recommended a post they already shared; seed sets of
  // tweets still fresh at the split carry over into the test period.
  const Timestamp split_time =
      train_end > 0 ? dataset.retweets[static_cast<size_t>(train_end - 1)].time
                    : 0;
  tweet_state_.clear();
  for (int64_t i = 0; i < train_end; ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    candidates_->MarkConsumed(e.user, e.tweet);
    const Timestamp tweet_time =
        dataset.tweets[static_cast<size_t>(e.tweet)].time;
    if (tweet_time + options_.freshness_window >= split_time) {
      tweet_state_[e.tweet].seeds.push_back(e.user);
    }
  }
  observed_ = 0;
  num_propagations_ = 0;
  return Status::Ok();
}

void SimGraphRecommender::Observe(const RetweetEvent& event) {
  SIMGRAPH_CHECK(propagator_ != nullptr) << "Train must be called first";
  candidates_->MarkConsumed(event.user, event.tweet);
  candidates_->MarkConsumed(tweet_author_[static_cast<size_t>(event.tweet)],
                            event.tweet);

  TweetState& state = tweet_state_[event.tweet];
  state.seeds.push_back(event.user);
  ++state.pending;

  // Postponed computation: batch retweets arriving within delta into one
  // propagation run.
  const bool due = state.last_propagation < 0 ||
                   event.time - state.last_propagation >=
                       options_.postpone_delta;
  if (due) {
    state.last_propagation = event.time;
    PropagateTweet(event.tweet, state);
  }

  // Periodic eviction keeps the candidate store bounded by the freshness
  // window.
  if (++observed_ % 50000 == 0) candidates_->EvictStale(event.time);
}

void SimGraphRecommender::PropagateTweet(TweetId tweet, TweetState& state) {
  state.pending = 0;
  propagator_->PropagateInto(state.seeds,
                             static_cast<int64_t>(state.seeds.size()),
                             options_.propagation, propagation_scratch_,
                             &propagation_result_);
  const PropagationResult& result = propagation_result_;
  ++num_propagations_;
  for (const UserScore& us : result.scores) {
    if (us.score >= options_.min_deposit_score) {
      candidates_->Deposit(us.user, tweet, us.score);
    }
  }
}

std::vector<ScoredTweet> SimGraphRecommender::Recommend(UserId user,
                                                        Timestamp now,
                                                        int32_t k) {
  SIMGRAPH_CHECK(candidates_ != nullptr) << "Train must be called first";
  SIMGRAPH_TRACE_SPAN("SimGraphRecommender::Recommend", "recommend");
  SIMGRAPH_SCOPED_LATENCY("recommend.simgraph.seconds");
  std::vector<ScoredTweet> own = candidates_->TopK(user, now, k);
  if (!own.empty() || !options_.cold_start_fallback || !IsColdUser(user)) {
    return own;
  }
  SIMGRAPH_COUNTER_ADD("recommend.simgraph.cold_start_calls", 1);
  return ColdStartRecommend(user, now, k);
}

bool SimGraphRecommender::IsColdUser(UserId user) const {
  return sim_graph_.graph.num_nodes() == 0 ||
         (sim_graph_.graph.OutDegree(user) == 0 &&
          sim_graph_.graph.InDegree(user) == 0);
}

std::vector<ScoredTweet> SimGraphRecommender::ColdStartRecommend(
    UserId user, Timestamp now, int32_t k) {
  if (follow_graph_ == nullptr) return {};
  const auto followees = follow_graph_->OutNeighbors(user);
  if (followees.empty()) return {};
  const int64_t limit = std::min<int64_t>(
      static_cast<int64_t>(followees.size()),
      options_.cold_start_max_followees);
  // Pool the followees' own candidate lists; a post recommended to many
  // followees accumulates score, scaled by the number consulted.
  std::unordered_map<TweetId, double> pooled;
  for (int64_t i = 0; i < limit; ++i) {
    const UserId v = followees[static_cast<size_t>(i)];
    for (const ScoredTweet& st : candidates_->TopK(v, now, k)) {
      if (candidates_->IsConsumed(user, st.tweet)) continue;
      pooled[st.tweet] += st.score / static_cast<double>(limit);
    }
  }
  std::vector<ScoredTweet> out;
  out.reserve(pooled.size());
  for (const auto& [tweet, score] : pooled) {
    out.push_back(ScoredTweet{tweet, score});
  }
  const auto better = [](const ScoredTweet& a, const ScoredTweet& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tweet < b.tweet;
  };
  if (static_cast<int64_t>(out.size()) > k) {
    std::partial_sort(out.begin(), out.begin() + k, out.end(), better);
    out.resize(static_cast<size_t>(k));
  } else {
    std::sort(out.begin(), out.end(), better);
  }
  return out;
}

void SimGraphRecommender::ReplaceSimGraph(SimGraph sim_graph) {
  sim_graph_ = std::move(sim_graph);
  propagator_ = std::make_unique<Propagator>(sim_graph_);
}

}  // namespace simgraph
