#include "core/candidate_store.h"

#include <algorithm>

#include "util/logging.h"

namespace simgraph {

CandidateStore::CandidateStore(int32_t num_users,
                               std::vector<Timestamp> tweet_times,
                               Timestamp freshness_window)
    : tweet_times_(std::move(tweet_times)),
      freshness_window_(freshness_window),
      candidates_(static_cast<size_t>(num_users)),
      consumed_(static_cast<size_t>(num_users)) {
  SIMGRAPH_CHECK_GT(freshness_window, 0);
}

bool CandidateStore::Deposit(UserId user, TweetId tweet, double score) {
  if (consumed_[static_cast<size_t>(user)].contains(tweet)) return false;
  double& slot = candidates_[static_cast<size_t>(user)][tweet];
  if (score <= slot) return false;
  slot = score;
  return true;
}

bool CandidateStore::Accumulate(UserId user, TweetId tweet, double delta) {
  if (consumed_[static_cast<size_t>(user)].contains(tweet)) return false;
  candidates_[static_cast<size_t>(user)][tweet] += delta;
  return delta != 0.0;
}

void CandidateStore::MarkConsumed(UserId user, TweetId tweet) {
  consumed_[static_cast<size_t>(user)].insert(tweet);
  candidates_[static_cast<size_t>(user)].erase(tweet);
}

std::vector<ScoredTweet> CandidateStore::TopK(UserId user, Timestamp now,
                                              int32_t k) const {
  std::vector<ScoredTweet> fresh;
  for (const auto& [tweet, score] : candidates_[static_cast<size_t>(user)]) {
    if (score > 0.0 && IsFresh(tweet, now) &&
        tweet_times_[static_cast<size_t>(tweet)] <= now) {
      fresh.push_back(ScoredTweet{tweet, score});
    }
  }
  const auto better = [](const ScoredTweet& a, const ScoredTweet& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.tweet < b.tweet;
  };
  if (static_cast<int64_t>(fresh.size()) > k) {
    std::partial_sort(fresh.begin(), fresh.begin() + k, fresh.end(), better);
    fresh.resize(static_cast<size_t>(k));
  } else {
    std::sort(fresh.begin(), fresh.end(), better);
  }
  return fresh;
}

void CandidateStore::EvictStale(Timestamp now) {
  for (size_t u = 0; u < candidates_.size(); ++u) {
    EvictStaleForUser(static_cast<UserId>(u), now);
  }
}

void CandidateStore::EvictStaleForUser(UserId user, Timestamp now) {
  auto& per_user = candidates_[static_cast<size_t>(user)];
  for (auto it = per_user.begin(); it != per_user.end();) {
    if (!IsFresh(it->first, now)) {
      it = per_user.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t CandidateStore::TotalCandidates() const {
  int64_t total = 0;
  for (const auto& per_user : candidates_) {
    total += static_cast<int64_t>(per_user.size());
  }
  return total;
}

}  // namespace simgraph
