#ifndef SIMGRAPH_STORE_SNAPSHOT_WRITER_H_
#define SIMGRAPH_STORE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "store/snapshot_format.h"
#include "util/status.h"
#include "util/timer.h"

namespace simgraph {
namespace store {

/// What a snapshot carries beyond the mandatory out-adjacency.
struct SnapshotWriterOptions {
  /// Store one f64 weight per out-edge (similarity graphs).
  bool weighted = false;
  /// Store the transposed (follower) adjacency too. Follow graphs need
  /// it (cascade exposure walks followers); pure propagation images can
  /// drop it and save ~40% of the file.
  bool include_in_adjacency = true;
};

/// Shape and cost of a finished snapshot, returned by Finalize and
/// mirrored into the store.snapshot.* metrics (docs/observability.md).
struct SnapshotBuildStats {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  uint64_t file_bytes = 0;
  double build_seconds = 0.0;
};

/// Streams a graph (and optionally retweet profiles) into an SGCS image
/// (store/snapshot_format.h, docs/store.md) without ever materialising
/// the edge list: adjacency bytes go straight to disk as nodes are
/// appended, and the writer holds only the O(num_nodes) offset/rank
/// index arrays (plus the raw weight array for weighted graphs, which
/// only come from in-RAM similarity graphs anyway).
///
/// Call order (phases are enforced; any violation or I/O error sticks
/// in status() and fails Finalize):
///
///   SnapshotWriter w(path, n, options);
///   for u in 0..n:   w.AppendOutNode(u, sorted_targets[, weights]);
///   for u in 0..n:   w.AppendInNode(u, sorted_sources);   // if included
///   for u in 0..n:   w.AppendProfile(u, sorted_tweets);   // optional
///   w.SetPopularity(popularity);                          // with profiles
///   w.Finalize();
///
/// The output is byte-deterministic: the same graph always produces the
/// same file (no timestamps), so images can be content-compared.
class SnapshotWriter {
 public:
  /// Starts writing to `path` (created/truncated). `num_nodes` fixes the
  /// node id space.
  SnapshotWriter(std::string path, int64_t num_nodes,
                 SnapshotWriterOptions options = {});
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// First error of the run; all appends after an error are no-ops.
  const Status& status() const { return status_; }

  /// Appends node `u`'s out-targets. Nodes must arrive exactly once, in
  /// ascending order, with strictly ascending in-range targets and no
  /// self-loop; `weights` is required (and must parallel `targets`) iff
  /// options.weighted.
  Status AppendOutNode(NodeId u, std::span<const NodeId> targets,
                       std::span<const double> weights = {});

  /// Appends node `u`'s in-sources (same ordering rules). Only legal
  /// after the out phase completes and iff options.include_in_adjacency.
  Status AppendInNode(NodeId u, std::span<const NodeId> sources);

  /// Appends user `u`'s retweet profile (sorted tweet ids). Calling this
  /// for user 0 opts the image into profile sections; then every user
  /// must be appended and SetPopularity called before Finalize.
  Status AppendProfile(NodeId u, std::span<const int64_t> tweets);

  /// Sets the per-tweet popularity array (tweet ids in every profile
  /// must be < popularity.size()).
  Status SetPopularity(std::span<const int32_t> popularity);

  /// Writes the index sections, patches the header/section table, and
  /// flushes. The file is invalid until this succeeds.
  StatusOr<SnapshotBuildStats> Finalize();

 private:
  Status Fail(Status status);
  void AppendBlob(const void* data, size_t size);
  void PadToAlignment();
  /// Closes the blob streamed since blob_begin_ (checksum + table entry).
  void CloseBlobSection(SectionId id);
  /// Writes a whole index section at the current cursor.
  void WriteIndexSection(SectionId id, const void* data, uint64_t bytes);
  /// Validates one node's sorted id list and delta/varint-encodes it
  /// into encode_buf_.
  Status EncodeNodeList(NodeId u, std::span<const NodeId> ids,
                        const char* what);
  /// Checks the out phase covered every node and closes its blob.
  Status EnsureOutClosed();
  /// Same for the in phase (no-op when the image excludes in-adjacency).
  Status EnsureInClosed();

  std::string path_;
  SnapshotWriterOptions options_;
  std::FILE* file_ = nullptr;
  Status status_;
  WallTimer timer_;

  int64_t num_nodes_ = 0;
  uint64_t cursor_ = 0;           // bytes written so far
  uint64_t blob_begin_ = 0;       // start of the blob being streamed
  ChecksumStream blob_checksum_;  // over the blob being streamed
  std::string encode_buf_;        // per-node varint scratch

  // Phase tracking: next node expected by each append phase; -1 = phase
  // not started, num_nodes_ = phase complete.
  int64_t next_out_ = 0;
  int64_t next_in_ = -1;
  int64_t next_profile_ = -1;

  std::vector<SectionEntry> sections_;
  std::vector<uint64_t> out_offsets_;  // built up to (n+1) entries
  std::vector<uint64_t> out_ranks_;
  std::vector<uint64_t> in_offsets_;
  std::vector<uint64_t> in_ranks_;
  std::vector<uint64_t> profile_offsets_;
  std::vector<uint64_t> profile_ranks_;
  std::vector<double> weights_;        // raw out-edge weights
  std::vector<int32_t> popularity_;
  int64_t max_profile_tweet_ = -1;
  bool out_closed_ = false;
  bool in_closed_ = false;
  bool has_popularity_ = false;
  bool finalized_ = false;
};

/// Serialises an existing CSR Digraph (both adjacency directions, and
/// weights when `g.has_weights()`). The one-stop path for snapshotting a
/// built follow graph or similarity graph; pass a SimGraph's `.graph`.
StatusOr<SnapshotBuildStats> WriteDigraphSnapshot(const Digraph& g,
                                                  const std::string& path);

/// Like WriteDigraphSnapshot with explicit section control (e.g. drop
/// the in-adjacency for propagation-only images).
StatusOr<SnapshotBuildStats> WriteDigraphSnapshot(
    const Digraph& g, const std::string& path,
    const SnapshotWriterOptions& options);

}  // namespace store
}  // namespace simgraph

#endif  // SIMGRAPH_STORE_SNAPSHOT_WRITER_H_
