#ifndef SIMGRAPH_STORE_GRAPH_IMAGE_H_
#define SIMGRAPH_STORE_GRAPH_IMAGE_H_

#include <memory>
#include <string>

#include "graph/digraph.h"
#include "store/snapshot_reader.h"
#include "util/status.h"

namespace simgraph {
namespace store {

/// A follow graph served out of an SGCS snapshot file: ONE mmap'd image
/// plus the adjacency decoded ONCE into a Digraph, wrapped in a
/// shared_ptr so every consumer in the process — the delta builder's
/// source recommender, all shards, benches — pins the same object
/// instead of holding per-shard copies.
///
/// What is shared with the kernel page cache (and therefore across
/// processes mapping the same file): the raw snapshot bytes — offsets,
/// ranks, popularity, profile sections are read straight from the map.
/// What is per-process: the varint-compressed adjacency must be decoded
/// into `graph()` once, because graph algorithms need random access to
/// plain NodeId arrays. See docs/store.md ("Sharing model").
class GraphImage {
 public:
  /// Opens (and fully validates) the snapshot at `path`, decodes the
  /// adjacency, and returns the pinned image.
  static StatusOr<std::shared_ptr<const GraphImage>> Load(
      const std::string& path, const SnapshotOpenOptions& options = {});

  /// The decoded follow graph. Valid for the image's lifetime.
  const Digraph& graph() const { return graph_; }

  /// The underlying mmap'd snapshot (zero-copy popularity / profile /
  /// index access).
  const MappedSnapshot& snapshot() const { return *snapshot_; }
  const std::shared_ptr<const MappedSnapshot>& snapshot_ptr() const {
    return snapshot_;
  }

  const std::string& path() const { return path_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }
  int64_t num_edges() const { return graph_.num_edges(); }
  uint64_t file_bytes() const { return snapshot_->file_bytes(); }

  GraphImage(const GraphImage&) = delete;
  GraphImage& operator=(const GraphImage&) = delete;

 private:
  GraphImage() = default;

  std::string path_;
  std::shared_ptr<const MappedSnapshot> snapshot_;
  Digraph graph_;
};

}  // namespace store
}  // namespace simgraph

#endif  // SIMGRAPH_STORE_GRAPH_IMAGE_H_
