#include "store/snapshot_format.h"

namespace simgraph {
namespace store {

std::string_view SectionName(SectionId id) {
  switch (id) {
    case SectionId::kOutAdjacency: return "out_adjacency";
    case SectionId::kOutOffsets: return "out_offsets";
    case SectionId::kOutRanks: return "out_ranks";
    case SectionId::kOutWeights: return "out_weights";
    case SectionId::kInAdjacency: return "in_adjacency";
    case SectionId::kInOffsets: return "in_offsets";
    case SectionId::kInRanks: return "in_ranks";
    case SectionId::kProfileAdjacency: return "profile_adjacency";
    case SectionId::kProfileOffsets: return "profile_offsets";
    case SectionId::kProfileRanks: return "profile_ranks";
    case SectionId::kPopularity: return "popularity";
  }
  return "unknown";
}

uint64_t SnapshotChecksum(const void* data, size_t size) {
  ChecksumStream stream;
  stream.Update(data, size);
  return stream.digest();
}

void ChecksumStream::Update(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    h_ ^= bytes[i];
    h_ *= 0x100000001B3ull;
  }
}

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

const uint8_t* DecodeVarint(const uint8_t* p, const uint8_t* end,
                            uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject a 10th byte carrying bits past the 64th — an overflowing
      // encoding a hostile writer could use to smuggle huge values.
      if (shift == 63 && (byte & 0x7E) != 0) return nullptr;
      *value = result;
      return p;
    }
    shift += 7;
  }
  return nullptr;  // truncated or > 10 bytes
}

}  // namespace store
}  // namespace simgraph
