#ifndef SIMGRAPH_STORE_SNAPSHOT_READER_H_
#define SIMGRAPH_STORE_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "store/snapshot_format.h"
#include "util/status.h"

namespace simgraph {
namespace store {

/// How hard MappedSnapshot::Open vets an image before exposing it.
struct SnapshotOpenOptions {
  /// Re-hash every section and compare against the table checksums.
  /// Catches bit rot and mid-file edits; costs one sequential pass.
  bool verify_checksums = true;
  /// Decode every adjacency/profile list and check ids are strictly
  /// ascending, in range, and match the rank counts. The strongest
  /// guarantee (per-query decodes can then never fail on structure),
  /// but a full decompression pass — leave off for trusted images.
  bool verify_adjacency = false;
};

/// A read-only SGCS snapshot mapped into memory.
///
/// Open() validates the whole structure against hostile input before
/// returning (see docs/store.md "Failure modes"): header magic/version/
/// flags, exact file size, section table bounds/alignment/overlap,
/// section presence matching the header flags, index-array invariants
/// (offsets monotone and ending at the blob size, ranks monotone and
/// ending at num_edges), plus optional checksum and full-decode passes.
/// After a successful Open the u64/f64/i32 index sections are served
/// zero-copy straight from the mapping; adjacency lists are
/// delta/varint-compressed, so neighbour queries decode into a caller
/// scratch buffer (still bounds-checked — a decode can only fail if the
/// file mutates underneath the mapping).
///
/// The object is immutable and safe to share across threads; serving
/// shards hold one std::shared_ptr<const MappedSnapshot> per process
/// and the kernel shares the backing pages across processes.
class MappedSnapshot {
 public:
  /// Maps and validates `path`. On any validation failure returns
  /// InvalidArgument (and bumps store.snapshot.validate_failures);
  /// on I/O failure returns IoError.
  static StatusOr<std::shared_ptr<const MappedSnapshot>> Open(
      const std::string& path, SnapshotOpenOptions options = {});

  ~MappedSnapshot();

  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  const std::string& path() const { return path_; }
  const FileHeader& header() const { return header_; }
  int64_t num_nodes() const { return header_.num_nodes; }
  int64_t num_edges() const { return header_.num_edges; }
  int64_t num_tweets() const { return header_.num_tweets; }
  uint64_t file_bytes() const { return header_.file_bytes; }
  bool has_in() const { return (header_.flags & kSnapshotFlagHasIn) != 0; }
  bool weighted() const {
    return (header_.flags & kSnapshotFlagWeighted) != 0;
  }
  bool has_profiles() const {
    return (header_.flags & kSnapshotFlagHasProfiles) != 0;
  }

  /// O(1) degree lookups from the rank arrays.
  int64_t OutDegree(NodeId u) const {
    return static_cast<int64_t>(out_ranks_[u + 1] - out_ranks_[u]);
  }
  /// Precondition: has_in().
  int64_t InDegree(NodeId u) const {
    return static_cast<int64_t>(in_ranks_[u + 1] - in_ranks_[u]);
  }
  /// Precondition: has_profiles().
  int64_t ProfileSize(NodeId u) const {
    return static_cast<int64_t>(profile_ranks_[u + 1] - profile_ranks_[u]);
  }

  /// Decodes u's sorted out-targets into `*scratch` and returns a span
  /// over it. The scratch buffer is reused across calls (no per-call
  /// allocation once it reaches the max degree).
  StatusOr<std::span<const NodeId>> OutNeighbors(
      NodeId u, std::vector<NodeId>* scratch) const;
  /// Same for in-sources. Precondition: has_in().
  StatusOr<std::span<const NodeId>> InNeighbors(
      NodeId u, std::vector<NodeId>* scratch) const;
  /// Same for sorted profile tweet ids. Precondition: has_profiles().
  StatusOr<std::span<const int64_t>> ProfileTweets(
      NodeId u, std::vector<int64_t>* scratch) const;

  /// u's out-edge weights, zero-copy from the mapping (parallel to
  /// OutNeighbors). Empty when the image is unweighted.
  std::span<const double> OutWeights(NodeId u) const {
    if (weights_.empty()) return {};
    return weights_.subspan(static_cast<size_t>(out_ranks_[u]),
                            static_cast<size_t>(OutDegree(u)));
  }

  /// Per-tweet retweet counts, zero-copy. Empty without profiles.
  std::span<const int32_t> popularity() const { return popularity_; }

  /// Fully decodes the image back into an in-RAM CSR Digraph — the
  /// bridge to every API that predates the store (and the basis of the
  /// snapshot/in-RAM equivalence tests).
  StatusOr<Digraph> Materialize() const;

  /// Section-table row for inspection (simgraph_cli snapshot-info).
  struct SectionInfo {
    SectionId id;
    std::string_view name;
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint64_t checksum = 0;
  };
  /// The validated section table, in file order.
  std::vector<SectionInfo> Sections() const;

 private:
  MappedSnapshot() = default;

  Status Validate(const SnapshotOpenOptions& options);
  /// Decodes one delta/varint node list (shared by the out/in paths).
  Status DecodeNodeList(std::span<const uint8_t> blob,
                        std::span<const uint64_t> offsets,
                        std::span<const uint64_t> ranks, NodeId u,
                        std::vector<NodeId>* scratch) const;
  /// Decodes one delta/varint tweet-id list (profile path).
  Status DecodeTweetList(NodeId u, std::vector<int64_t>* scratch) const;

  std::string path_;
  void* map_ = nullptr;  // mmap base (whole file)
  size_t map_size_ = 0;
  FileHeader header_;
  std::vector<SectionEntry> table_;

  // Validated zero-copy views into the mapping.
  std::span<const uint8_t> out_blob_;
  std::span<const uint64_t> out_offsets_;
  std::span<const uint64_t> out_ranks_;
  std::span<const double> weights_;
  std::span<const uint8_t> in_blob_;
  std::span<const uint64_t> in_offsets_;
  std::span<const uint64_t> in_ranks_;
  std::span<const uint8_t> profile_blob_;
  std::span<const uint64_t> profile_offsets_;
  std::span<const uint64_t> profile_ranks_;
  std::span<const int32_t> popularity_;
};

}  // namespace store
}  // namespace simgraph

#endif  // SIMGRAPH_STORE_SNAPSHOT_READER_H_
