#ifndef SIMGRAPH_STORE_SNAPSHOT_FORMAT_H_
#define SIMGRAPH_STORE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// \file
/// The SGCS ("SimGraph Compressed Snapshot") on-disk image format — the
/// binary, memory-mappable graph substrate one builder process writes
/// once and any number of shard / bench processes mmap read-only
/// (docs/store.md is the full reference).
///
/// Layout (everything little-endian, sections 8-byte aligned):
///
///   [FileHeader][SectionEntry x section_count][section blobs...]
///
/// Adjacency is CSR with the target lists delta/varint-encoded: node
/// u's sorted targets t0 < t1 < ... are stored as
/// varint(t0), varint(t1 - t0), ... so dense neighbourhoods cost ~1-2
/// bytes per edge instead of 4. Two parallel (num_nodes + 1) u64 index
/// arrays give random access: *_offsets[u] is the byte offset of u's
/// first varint inside the blob, *_ranks[u] the cumulative edge count
/// (so degree(u) = ranks[u+1] - ranks[u], and ranks also index the raw
/// weight array of weighted graphs).

namespace simgraph {
namespace store {

/// First four bytes of every snapshot, "SGCS" read as a LE u32.
inline constexpr uint32_t kSnapshotMagic = 0x53434753u;

/// Current layout version; the reader rejects anything else.
inline constexpr uint16_t kSnapshotVersion = 1;

/// Header flag: the image carries in-adjacency (followers) sections.
inline constexpr uint16_t kSnapshotFlagHasIn = 1u << 0;
/// Header flag: the image carries per-edge out weights.
inline constexpr uint16_t kSnapshotFlagWeighted = 1u << 1;
/// Header flag: the image carries retweet profiles and popularity.
inline constexpr uint16_t kSnapshotFlagHasProfiles = 1u << 2;
/// Every flag the v1 reader understands; unknown bits are rejected.
inline constexpr uint16_t kSnapshotKnownFlags =
    kSnapshotFlagHasIn | kSnapshotFlagWeighted | kSnapshotFlagHasProfiles;

/// Section identifiers. v1 readers reject unknown or duplicate ids.
enum class SectionId : uint32_t {
  kOutAdjacency = 1,     // delta/varint target blob
  kOutOffsets = 2,       // (n+1) u64 byte offsets into kOutAdjacency
  kOutRanks = 3,         // (n+1) u64 cumulative edge counts
  kOutWeights = 4,       // num_edges f64, indexed by edge rank
  kInAdjacency = 5,      // delta/varint source blob
  kInOffsets = 6,        // (n+1) u64
  kInRanks = 7,          // (n+1) u64
  kProfileAdjacency = 8, // delta/varint tweet-id blob (per user)
  kProfileOffsets = 9,   // (n+1) u64
  kProfileRanks = 10,    // (n+1) u64
  kPopularity = 11,      // num_tweets i32 retweet counts
};

/// Stable name for `id` ("out_adjacency", ...); "unknown" otherwise.
std::string_view SectionName(SectionId id);

/// Fixed 64-byte file header. POD, memcpy'd to/from the file.
struct FileHeader {
  uint32_t magic = kSnapshotMagic;
  uint16_t version = kSnapshotVersion;
  uint16_t flags = 0;
  uint32_t section_count = 0;
  uint32_t reserved0 = 0;
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  /// Length of the popularity array (0 when kSnapshotFlagHasProfiles is
  /// clear); profile tweet ids must be < num_tweets.
  int64_t num_tweets = 0;
  /// Total file size in bytes — a cheap whole-file truncation check
  /// before any section is touched.
  uint64_t file_bytes = 0;
  uint64_t reserved1 = 0;
  uint64_t reserved2 = 0;
};
static_assert(sizeof(FileHeader) == 64, "SGCS header layout drifted");

/// One section-table entry (32 bytes each, directly after the header).
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  /// Absolute byte offset from the start of the file; 8-byte aligned.
  uint64_t offset = 0;
  /// Exact payload size (excluding alignment padding after it).
  uint64_t bytes = 0;
  /// FNV-1a 64 checksum of the payload bytes.
  uint64_t checksum = 0;
};
static_assert(sizeof(SectionEntry) == 32, "SGCS section entry drifted");

/// FNV-1a 64-bit over `size` bytes — the section checksum. Chosen for
/// zero dependencies and byte-order independence, not cryptography; it
/// catches truncation, bit rot, and mid-file edits.
uint64_t SnapshotChecksum(const void* data, size_t size);

/// Streaming form of SnapshotChecksum for writers that never hold a
/// whole section in memory: Update in any chunking, same digest.
class ChecksumStream {
 public:
  void Update(const void* data, size_t size);
  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 0xCBF29CE484222325ull;
};

/// Appends the LEB128 varint encoding of `value` to `out` (max 10 bytes).
void AppendVarint(std::string* out, uint64_t value);

/// Decodes one varint from [p, end). Returns the byte just past the
/// varint, or nullptr on truncation/overflow (more than 10 bytes or a
/// 10th byte with high bits set).
const uint8_t* DecodeVarint(const uint8_t* p, const uint8_t* end,
                            uint64_t* value);

}  // namespace store
}  // namespace simgraph

#endif  // SIMGRAPH_STORE_SNAPSHOT_FORMAT_H_
