#include "store/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "graph/graph_builder.h"
#include "util/metrics.h"

namespace simgraph {
namespace store {
namespace {

/// Every section id the v1 layout defines, used for duplicate and
/// required-section bookkeeping (bit i ↔ section id i).
constexpr uint32_t kMaxSectionId = 11;

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("SGCS " + path + ": " + what);
}

/// Casts a validated, 8-aligned section to a typed zero-copy span.
template <typename T>
std::span<const T> TypedSpan(std::span<const uint8_t> bytes) {
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}

/// Checks an index array: (n+1) entries, starts at 0, nondecreasing,
/// ends at `total`.
Status CheckIndexArray(const std::string& path, std::string_view name,
                       std::span<const uint64_t> index, int64_t num_nodes,
                       uint64_t total) {
  if (index.size() != static_cast<size_t>(num_nodes) + 1) {
    return Corrupt(path, std::string(name) + " has wrong entry count");
  }
  if (index.front() != 0) {
    return Corrupt(path, std::string(name) + " does not start at 0");
  }
  for (size_t i = 1; i < index.size(); ++i) {
    if (index[i] < index[i - 1]) {
      return Corrupt(path, std::string(name) + " is not nondecreasing");
    }
  }
  if (index.back() != total) {
    return Corrupt(path, std::string(name) + " total mismatch");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::shared_ptr<const MappedSnapshot>> MappedSnapshot::Open(
    const std::string& path, SnapshotOpenOptions options) {
  // shared_ptr with a plain-new: the constructor is private.
  std::shared_ptr<MappedSnapshot> snap(new MappedSnapshot());
  snap->path_ = path;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open snapshot: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat snapshot: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < sizeof(FileHeader)) {
    ::close(fd);
    SIMGRAPH_COUNTER_ADD("store.snapshot.validate_failures", 1);
    return Corrupt(path, "smaller than the file header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path);
  }
  snap->map_ = map;
  snap->map_size_ = size;

  Status status = snap->Validate(options);
  if (!status.ok()) {
    SIMGRAPH_COUNTER_ADD("store.snapshot.validate_failures", 1);
    return status;  // ~MappedSnapshot unmaps
  }
  SIMGRAPH_COUNTER_ADD("store.snapshot.opens", 1);
  SIMGRAPH_GAUGE_SET("store.snapshot.mmap_bytes",
                     static_cast<double>(size));
  return std::shared_ptr<const MappedSnapshot>(std::move(snap));
}

MappedSnapshot::~MappedSnapshot() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Status MappedSnapshot::Validate(const SnapshotOpenOptions& options) {
  const uint8_t* base = static_cast<const uint8_t*>(map_);
  std::memcpy(&header_, base, sizeof(header_));
  if (header_.magic != kSnapshotMagic) return Corrupt(path_, "bad magic");
  if (header_.version != kSnapshotVersion) {
    return Corrupt(path_, "unsupported version");
  }
  if ((header_.flags & ~kSnapshotKnownFlags) != 0) {
    return Corrupt(path_, "unknown header flags");
  }
  if (header_.file_bytes != map_size_) {
    return Corrupt(path_, "file size mismatch (truncated or padded)");
  }
  if (header_.num_nodes < 0 ||
      header_.num_nodes >
          static_cast<int64_t>(std::numeric_limits<NodeId>::max()) ||
      header_.num_edges < 0 || header_.num_tweets < 0) {
    return Corrupt(path_, "negative or oversized header counts");
  }
  if (!has_profiles() && header_.num_tweets != 0) {
    return Corrupt(path_, "num_tweets set without profile flag");
  }

  // Section table: fully inside the file, known unique ids, 8-aligned
  // in-bounds payloads that overlap neither the table nor each other.
  const uint64_t table_end =
      sizeof(FileHeader) +
      static_cast<uint64_t>(header_.section_count) * sizeof(SectionEntry);
  if (header_.section_count > kMaxSectionId || table_end > map_size_) {
    return Corrupt(path_, "section table out of bounds");
  }
  table_.resize(header_.section_count);
  std::memcpy(table_.data(), base + sizeof(FileHeader),
              table_.size() * sizeof(SectionEntry));
  uint32_t seen_ids = 0;
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  for (const SectionEntry& entry : table_) {
    if (entry.id < 1 || entry.id > kMaxSectionId) {
      return Corrupt(path_, "unknown section id");
    }
    if ((seen_ids >> entry.id) & 1) {
      return Corrupt(path_, "duplicate section id");
    }
    seen_ids |= 1u << entry.id;
    if (entry.reserved != 0) return Corrupt(path_, "reserved field set");
    if (entry.offset % 8 != 0) return Corrupt(path_, "misaligned section");
    if (entry.offset < table_end || entry.offset > map_size_ ||
        entry.bytes > map_size_ - entry.offset) {
      return Corrupt(path_, "section out of bounds");
    }
    extents.emplace_back(entry.offset, entry.bytes);
  }
  std::sort(extents.begin(), extents.end());
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].first < extents[i - 1].first + extents[i - 1].second) {
      return Corrupt(path_, "overlapping sections");
    }
  }

  // The section set must match the header flags exactly.
  auto required = [](SectionId id) { return 1u << static_cast<uint32_t>(id); };
  uint32_t expect = required(SectionId::kOutAdjacency) |
                    required(SectionId::kOutOffsets) |
                    required(SectionId::kOutRanks);
  if (weighted()) expect |= required(SectionId::kOutWeights);
  if (has_in()) {
    expect |= required(SectionId::kInAdjacency) |
              required(SectionId::kInOffsets) | required(SectionId::kInRanks);
  }
  if (has_profiles()) {
    expect |= required(SectionId::kProfileAdjacency) |
              required(SectionId::kProfileOffsets) |
              required(SectionId::kProfileRanks) |
              required(SectionId::kPopularity);
  }
  if (seen_ids != expect) {
    return Corrupt(path_, "section set does not match header flags");
  }

  if (options.verify_checksums) {
    for (const SectionEntry& entry : table_) {
      if (SnapshotChecksum(base + entry.offset,
                           static_cast<size_t>(entry.bytes)) !=
          entry.checksum) {
        return Corrupt(path_, "checksum mismatch in section " +
                                  std::string(SectionName(
                                      static_cast<SectionId>(entry.id))));
      }
    }
  }

  auto section = [&](SectionId id) -> std::span<const uint8_t> {
    for (const SectionEntry& entry : table_) {
      if (entry.id == static_cast<uint32_t>(id)) {
        return {base + entry.offset, static_cast<size_t>(entry.bytes)};
      }
    }
    return {};
  };

  const int64_t n = header_.num_nodes;
  out_blob_ = section(SectionId::kOutAdjacency);
  out_offsets_ = TypedSpan<uint64_t>(section(SectionId::kOutOffsets));
  out_ranks_ = TypedSpan<uint64_t>(section(SectionId::kOutRanks));
  SIMGRAPH_RETURN_IF_ERROR(CheckIndexArray(path_, "out_offsets", out_offsets_,
                                           n, out_blob_.size()));
  SIMGRAPH_RETURN_IF_ERROR(
      CheckIndexArray(path_, "out_ranks", out_ranks_, n,
                      static_cast<uint64_t>(header_.num_edges)));
  if (weighted()) {
    const auto bytes = section(SectionId::kOutWeights);
    if (bytes.size() !=
        static_cast<size_t>(header_.num_edges) * sizeof(double)) {
      return Corrupt(path_, "out_weights has wrong entry count");
    }
    weights_ = TypedSpan<double>(bytes);
  }
  if (has_in()) {
    in_blob_ = section(SectionId::kInAdjacency);
    in_offsets_ = TypedSpan<uint64_t>(section(SectionId::kInOffsets));
    in_ranks_ = TypedSpan<uint64_t>(section(SectionId::kInRanks));
    SIMGRAPH_RETURN_IF_ERROR(CheckIndexArray(path_, "in_offsets", in_offsets_,
                                             n, in_blob_.size()));
    // Every directed edge appears exactly once in the transpose.
    SIMGRAPH_RETURN_IF_ERROR(
        CheckIndexArray(path_, "in_ranks", in_ranks_, n,
                        static_cast<uint64_t>(header_.num_edges)));
  }
  if (has_profiles()) {
    profile_blob_ = section(SectionId::kProfileAdjacency);
    profile_offsets_ = TypedSpan<uint64_t>(section(SectionId::kProfileOffsets));
    profile_ranks_ = TypedSpan<uint64_t>(section(SectionId::kProfileRanks));
    SIMGRAPH_RETURN_IF_ERROR(CheckIndexArray(
        path_, "profile_offsets", profile_offsets_, n, profile_blob_.size()));
    SIMGRAPH_RETURN_IF_ERROR(CheckIndexArray(path_, "profile_ranks",
                                             profile_ranks_, n,
                                             profile_ranks_.back()));
    const auto bytes = section(SectionId::kPopularity);
    if (bytes.size() !=
        static_cast<size_t>(header_.num_tweets) * sizeof(int32_t)) {
      return Corrupt(path_, "popularity has wrong entry count");
    }
    popularity_ = TypedSpan<int32_t>(bytes);
    for (const int32_t p : popularity_) {
      if (p < 0) return Corrupt(path_, "negative popularity");
    }
  }

  if (options.verify_adjacency) {
    std::vector<NodeId> nodes;
    std::vector<int64_t> tweets;
    for (NodeId u = 0; u < n; ++u) {
      SIMGRAPH_RETURN_IF_ERROR(
          DecodeNodeList(out_blob_, out_offsets_, out_ranks_, u, &nodes));
      if (has_in()) {
        SIMGRAPH_RETURN_IF_ERROR(
            DecodeNodeList(in_blob_, in_offsets_, in_ranks_, u, &nodes));
      }
      if (has_profiles()) {
        SIMGRAPH_RETURN_IF_ERROR(DecodeTweetList(u, &tweets));
      }
    }
  }
  return Status::Ok();
}

Status MappedSnapshot::DecodeNodeList(std::span<const uint8_t> blob,
                                      std::span<const uint64_t> offsets,
                                      std::span<const uint64_t> ranks, NodeId u,
                                      std::vector<NodeId>* scratch) const {
  const uint64_t begin = offsets[u];
  const uint64_t end = offsets[u + 1];
  const size_t count = static_cast<size_t>(ranks[u + 1] - ranks[u]);
  scratch->resize(count);
  const uint8_t* p = blob.data() + begin;
  const uint8_t* stop = blob.data() + end;
  const uint64_t bound = static_cast<uint64_t>(header_.num_nodes);
  uint64_t acc = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    p = DecodeVarint(p, stop, &delta);
    if (p == nullptr) return Corrupt(path_, "truncated adjacency varint");
    // Reject before accumulating so `acc` can never wrap uint64.
    if (delta > bound) return Corrupt(path_, "adjacency delta out of range");
    if (i == 0) {
      acc = delta;
    } else {
      if (delta == 0) return Corrupt(path_, "adjacency ids not ascending");
      acc += delta;
    }
    if (acc >= bound) return Corrupt(path_, "adjacency id out of range");
    if (acc == static_cast<uint64_t>(u)) {
      return Corrupt(path_, "adjacency self-loop");
    }
    (*scratch)[i] = static_cast<NodeId>(acc);
  }
  if (p != stop) return Corrupt(path_, "trailing adjacency bytes");
  return Status::Ok();
}

Status MappedSnapshot::DecodeTweetList(NodeId u,
                                       std::vector<int64_t>* scratch) const {
  const uint64_t begin = profile_offsets_[u];
  const uint64_t end = profile_offsets_[u + 1];
  const size_t count =
      static_cast<size_t>(profile_ranks_[u + 1] - profile_ranks_[u]);
  scratch->resize(count);
  const uint8_t* p = profile_blob_.data() + begin;
  const uint8_t* stop = profile_blob_.data() + end;
  const uint64_t bound = static_cast<uint64_t>(header_.num_tweets);
  uint64_t acc = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    p = DecodeVarint(p, stop, &delta);
    if (p == nullptr) return Corrupt(path_, "truncated profile varint");
    if (delta > bound) return Corrupt(path_, "profile delta out of range");
    if (i == 0) {
      acc = delta;
    } else {
      if (delta == 0) return Corrupt(path_, "profile tweets not ascending");
      acc += delta;
    }
    if (acc >= bound) return Corrupt(path_, "profile tweet id out of range");
    (*scratch)[i] = static_cast<int64_t>(acc);
  }
  if (p != stop) return Corrupt(path_, "trailing profile bytes");
  return Status::Ok();
}

StatusOr<std::span<const NodeId>> MappedSnapshot::OutNeighbors(
    NodeId u, std::vector<NodeId>* scratch) const {
  if (u < 0 || u >= header_.num_nodes) {
    return Status::OutOfRange("node id out of range");
  }
  SIMGRAPH_RETURN_IF_ERROR(
      DecodeNodeList(out_blob_, out_offsets_, out_ranks_, u, scratch));
  return std::span<const NodeId>(*scratch);
}

StatusOr<std::span<const NodeId>> MappedSnapshot::InNeighbors(
    NodeId u, std::vector<NodeId>* scratch) const {
  if (u < 0 || u >= header_.num_nodes) {
    return Status::OutOfRange("node id out of range");
  }
  if (!has_in()) {
    return Status::FailedPrecondition("image has no in-adjacency");
  }
  SIMGRAPH_RETURN_IF_ERROR(
      DecodeNodeList(in_blob_, in_offsets_, in_ranks_, u, scratch));
  return std::span<const NodeId>(*scratch);
}

StatusOr<std::span<const int64_t>> MappedSnapshot::ProfileTweets(
    NodeId u, std::vector<int64_t>* scratch) const {
  if (u < 0 || u >= header_.num_nodes) {
    return Status::OutOfRange("node id out of range");
  }
  if (!has_profiles()) {
    return Status::FailedPrecondition("image has no profiles");
  }
  SIMGRAPH_RETURN_IF_ERROR(DecodeTweetList(u, scratch));
  return std::span<const int64_t>(*scratch);
}

StatusOr<Digraph> MappedSnapshot::Materialize() const {
  GraphBuilder builder(static_cast<NodeId>(header_.num_nodes));
  std::vector<NodeId> targets;
  for (NodeId u = 0; u < header_.num_nodes; ++u) {
    SIMGRAPH_RETURN_IF_ERROR(
        DecodeNodeList(out_blob_, out_offsets_, out_ranks_, u, &targets));
    const std::span<const double> w = OutWeights(u);
    for (size_t i = 0; i < targets.size(); ++i) {
      builder.AddEdge(u, targets[i], w.empty() ? 1.0 : w[i]);
    }
  }
  return builder.Build(weighted());
}

std::vector<MappedSnapshot::SectionInfo> MappedSnapshot::Sections() const {
  std::vector<SectionInfo> out;
  out.reserve(table_.size());
  for (const SectionEntry& entry : table_) {
    SectionInfo info;
    info.id = static_cast<SectionId>(entry.id);
    info.name = SectionName(info.id);
    info.offset = entry.offset;
    info.bytes = entry.bytes;
    info.checksum = entry.checksum;
    out.push_back(info);
  }
  return out;
}

}  // namespace store
}  // namespace simgraph
