#include "store/snapshot_writer.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/metrics.h"

namespace simgraph {
namespace store {
namespace {

/// Fixed section-table capacity: every v1 section id fits, so blob
/// offsets are independent of which optional sections an image carries
/// and the writer never moves bytes once they are streamed.
constexpr uint32_t kTableCapacity = 11;
constexpr uint64_t kBlobStart =
    sizeof(FileHeader) + kTableCapacity * sizeof(SectionEntry);
static_assert(kBlobStart % 8 == 0, "blob start must stay 8-byte aligned");

Status WriterError(const std::string& what) {
  return Status::InvalidArgument("SnapshotWriter: " + what);
}

}  // namespace

SnapshotWriter::SnapshotWriter(std::string path, int64_t num_nodes,
                               SnapshotWriterOptions options)
    : path_(std::move(path)), options_(options), num_nodes_(num_nodes) {
  if (num_nodes_ < 0 ||
      num_nodes_ > static_cast<int64_t>(std::numeric_limits<NodeId>::max())) {
    status_ = WriterError("num_nodes out of NodeId range");
    return;
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for writing: " + path_);
    return;
  }
  // The header and section table are patched in by Finalize; reserve
  // their fixed space now so blobs stream from a stable offset.
  const std::string zeros(kBlobStart, '\0');
  AppendBlob(zeros.data(), zeros.size());
  blob_checksum_ = ChecksumStream();  // reserved bytes are not a section
  blob_begin_ = cursor_;
  out_offsets_.reserve(static_cast<size_t>(num_nodes_) + 1);
  out_offsets_.push_back(0);
  out_ranks_.reserve(static_cast<size_t>(num_nodes_) + 1);
  out_ranks_.push_back(0);
}

SnapshotWriter::~SnapshotWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SnapshotWriter::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
  return status_;
}

void SnapshotWriter::AppendBlob(const void* data, size_t size) {
  if (!status_.ok() || size == 0) return;
  if (std::fwrite(data, 1, size, file_) != size) {
    status_ = Status::IoError("write failed: " + path_);
    return;
  }
  blob_checksum_.Update(data, size);
  cursor_ += size;
}

void SnapshotWriter::PadToAlignment() {
  if (!status_.ok()) return;
  static const char kZeros[8] = {};
  const uint64_t misaligned = cursor_ % 8;
  if (misaligned == 0) return;
  const size_t pad = static_cast<size_t>(8 - misaligned);
  if (std::fwrite(kZeros, 1, pad, file_) != pad) {
    status_ = Status::IoError("write failed: " + path_);
    return;
  }
  cursor_ += pad;  // padding sits outside every section checksum
}

void SnapshotWriter::CloseBlobSection(SectionId id) {
  if (!status_.ok()) return;
  SectionEntry entry;
  entry.id = static_cast<uint32_t>(id);
  entry.offset = blob_begin_;
  entry.bytes = cursor_ - blob_begin_;
  entry.checksum = blob_checksum_.digest();
  sections_.push_back(entry);
  blob_checksum_ = ChecksumStream();
  PadToAlignment();
  blob_begin_ = cursor_;
}

void SnapshotWriter::WriteIndexSection(SectionId id, const void* data,
                                       uint64_t bytes) {
  if (!status_.ok()) return;
  const uint64_t begin = cursor_;
  AppendBlob(data, static_cast<size_t>(bytes));
  if (!status_.ok()) return;
  SectionEntry entry;
  entry.id = static_cast<uint32_t>(id);
  entry.offset = begin;
  entry.bytes = bytes;
  entry.checksum = SnapshotChecksum(data, static_cast<size_t>(bytes));
  sections_.push_back(entry);
  blob_checksum_ = ChecksumStream();
  PadToAlignment();
  blob_begin_ = cursor_;
}

Status SnapshotWriter::EncodeNodeList(NodeId u, std::span<const NodeId> ids,
                                      const char* what) {
  encode_buf_.clear();
  NodeId prev = -1;
  for (const NodeId v : ids) {
    if (v < 0 || v >= num_nodes_) {
      return Fail(WriterError(std::string(what) + " id out of range"));
    }
    if (v == u) return Fail(WriterError(std::string(what) + " self-loop"));
    if (v <= prev) {
      return Fail(
          WriterError(std::string(what) + " ids must be strictly ascending"));
    }
    AppendVarint(&encode_buf_, prev < 0 ? static_cast<uint64_t>(v)
                                        : static_cast<uint64_t>(v - prev));
    prev = v;
  }
  return status_;
}

Status SnapshotWriter::AppendOutNode(NodeId u, std::span<const NodeId> targets,
                                     std::span<const double> weights) {
  if (!status_.ok()) return status_;
  if (out_closed_ || u != next_out_) {
    return Fail(WriterError("out nodes must arrive exactly once, 0..n-1"));
  }
  if (options_.weighted ? weights.size() != targets.size()
                        : !weights.empty()) {
    return Fail(WriterError("weights must parallel targets iff weighted"));
  }
  SIMGRAPH_RETURN_IF_ERROR(EncodeNodeList(u, targets, "out target"));
  AppendBlob(encode_buf_.data(), encode_buf_.size());
  out_offsets_.push_back(cursor_ - blob_begin_);
  out_ranks_.push_back(out_ranks_.back() + targets.size());
  if (options_.weighted) {
    weights_.insert(weights_.end(), weights.begin(), weights.end());
  }
  ++next_out_;
  return status_;
}

Status SnapshotWriter::EnsureOutClosed() {
  if (!status_.ok()) return status_;
  if (next_out_ != num_nodes_) {
    return Fail(WriterError("out phase incomplete"));
  }
  if (!out_closed_) {
    CloseBlobSection(SectionId::kOutAdjacency);
    out_closed_ = true;
  }
  return status_;
}

Status SnapshotWriter::AppendInNode(NodeId u, std::span<const NodeId> sources) {
  if (!status_.ok()) return status_;
  if (!options_.include_in_adjacency) {
    return Fail(WriterError("image excludes in-adjacency"));
  }
  if (next_in_ < 0) {
    SIMGRAPH_RETURN_IF_ERROR(EnsureOutClosed());
    next_in_ = 0;
    in_offsets_.reserve(static_cast<size_t>(num_nodes_) + 1);
    in_offsets_.push_back(0);
    in_ranks_.reserve(static_cast<size_t>(num_nodes_) + 1);
    in_ranks_.push_back(0);
  }
  if (in_closed_ || u != next_in_) {
    return Fail(WriterError("in nodes must arrive exactly once, 0..n-1"));
  }
  SIMGRAPH_RETURN_IF_ERROR(EncodeNodeList(u, sources, "in source"));
  AppendBlob(encode_buf_.data(), encode_buf_.size());
  in_offsets_.push_back(cursor_ - blob_begin_);
  in_ranks_.push_back(in_ranks_.back() + sources.size());
  ++next_in_;
  return status_;
}

Status SnapshotWriter::EnsureInClosed() {
  if (!status_.ok()) return status_;
  if (!options_.include_in_adjacency) return status_;
  if (next_in_ < 0) {
    if (num_nodes_ > 0) return Fail(WriterError("in phase missing"));
    // Zero-node image: the in phase is trivially complete.
    SIMGRAPH_RETURN_IF_ERROR(EnsureOutClosed());
    next_in_ = 0;
    in_offsets_.push_back(0);
    in_ranks_.push_back(0);
  }
  if (next_in_ != num_nodes_) {
    return Fail(WriterError("in phase incomplete"));
  }
  if (!in_closed_) {
    CloseBlobSection(SectionId::kInAdjacency);
    in_closed_ = true;
  }
  return status_;
}

Status SnapshotWriter::AppendProfile(NodeId u,
                                     std::span<const int64_t> tweets) {
  if (!status_.ok()) return status_;
  if (next_profile_ < 0) {
    SIMGRAPH_RETURN_IF_ERROR(EnsureOutClosed());
    SIMGRAPH_RETURN_IF_ERROR(EnsureInClosed());
    next_profile_ = 0;
    profile_offsets_.reserve(static_cast<size_t>(num_nodes_) + 1);
    profile_offsets_.push_back(0);
    profile_ranks_.reserve(static_cast<size_t>(num_nodes_) + 1);
    profile_ranks_.push_back(0);
  }
  if (u != next_profile_ || next_profile_ >= num_nodes_) {
    return Fail(WriterError("profiles must arrive exactly once, 0..n-1"));
  }
  encode_buf_.clear();
  int64_t prev = -1;
  for (const int64_t t : tweets) {
    if (t < 0) return Fail(WriterError("negative tweet id in profile"));
    if (t <= prev) {
      return Fail(WriterError("profile tweets must be strictly ascending"));
    }
    AppendVarint(&encode_buf_, prev < 0 ? static_cast<uint64_t>(t)
                                        : static_cast<uint64_t>(t - prev));
    max_profile_tweet_ = std::max(max_profile_tweet_, t);
    prev = t;
  }
  AppendBlob(encode_buf_.data(), encode_buf_.size());
  profile_offsets_.push_back(cursor_ - blob_begin_);
  profile_ranks_.push_back(profile_ranks_.back() + tweets.size());
  ++next_profile_;
  return status_;
}

Status SnapshotWriter::SetPopularity(std::span<const int32_t> popularity) {
  if (!status_.ok()) return status_;
  if (has_popularity_) return Fail(WriterError("popularity already set"));
  for (const int32_t p : popularity) {
    if (p < 0) return Fail(WriterError("negative popularity"));
  }
  popularity_.assign(popularity.begin(), popularity.end());
  has_popularity_ = true;
  return status_;
}

StatusOr<SnapshotBuildStats> SnapshotWriter::Finalize() {
  if (finalized_) return WriterError("Finalize called twice");
  finalized_ = true;
  if (!status_.ok()) return status_;
  SIMGRAPH_RETURN_IF_ERROR(EnsureOutClosed());
  SIMGRAPH_RETURN_IF_ERROR(EnsureInClosed());

  const bool has_profiles = next_profile_ >= 0 || has_popularity_;
  if (has_profiles) {
    if (next_profile_ < 0 && num_nodes_ > 0) {
      return Fail(WriterError("popularity without profiles"));
    }
    if (next_profile_ >= 0 && next_profile_ != num_nodes_) {
      return Fail(WriterError("profile phase incomplete"));
    }
    if (!has_popularity_) {
      return Fail(WriterError("profiles need SetPopularity"));
    }
    if (max_profile_tweet_ >= static_cast<int64_t>(popularity_.size())) {
      return Fail(WriterError("profile tweet id >= popularity size"));
    }
    if (next_profile_ < 0) {  // zero-node image with popularity only
      next_profile_ = 0;
      profile_offsets_.push_back(0);
      profile_ranks_.push_back(0);
    }
    CloseBlobSection(SectionId::kProfileAdjacency);
  }

  const int64_t num_edges = static_cast<int64_t>(out_ranks_.back());
  WriteIndexSection(SectionId::kOutOffsets, out_offsets_.data(),
                    out_offsets_.size() * sizeof(uint64_t));
  WriteIndexSection(SectionId::kOutRanks, out_ranks_.data(),
                    out_ranks_.size() * sizeof(uint64_t));
  if (options_.weighted) {
    WriteIndexSection(SectionId::kOutWeights, weights_.data(),
                      weights_.size() * sizeof(double));
  }
  if (options_.include_in_adjacency) {
    WriteIndexSection(SectionId::kInOffsets, in_offsets_.data(),
                      in_offsets_.size() * sizeof(uint64_t));
    WriteIndexSection(SectionId::kInRanks, in_ranks_.data(),
                      in_ranks_.size() * sizeof(uint64_t));
  }
  if (has_profiles) {
    WriteIndexSection(SectionId::kProfileOffsets, profile_offsets_.data(),
                      profile_offsets_.size() * sizeof(uint64_t));
    WriteIndexSection(SectionId::kProfileRanks, profile_ranks_.data(),
                      profile_ranks_.size() * sizeof(uint64_t));
    WriteIndexSection(SectionId::kPopularity, popularity_.data(),
                      popularity_.size() * sizeof(int32_t));
  }
  if (!status_.ok()) return status_;

  FileHeader header;
  header.flags = static_cast<uint16_t>(
      (options_.weighted ? kSnapshotFlagWeighted : 0) |
      (options_.include_in_adjacency ? kSnapshotFlagHasIn : 0) |
      (has_profiles ? kSnapshotFlagHasProfiles : 0));
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.num_nodes = num_nodes_;
  header.num_edges = num_edges;
  header.num_tweets = static_cast<int64_t>(popularity_.size());
  header.file_bytes = cursor_;

  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Fail(Status::IoError("seek failed: " + path_));
  }
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    return Fail(Status::IoError("header write failed: " + path_));
  }
  // Unused table slots stay zeroed; only section_count entries are read.
  std::vector<SectionEntry> table(kTableCapacity);
  std::copy(sections_.begin(), sections_.end(), table.begin());
  if (std::fwrite(table.data(), sizeof(SectionEntry), table.size(), file_) !=
      table.size()) {
    return Fail(Status::IoError("section table write failed: " + path_));
  }
  const bool closed = std::fflush(file_) == 0 && std::fclose(file_) == 0;
  file_ = nullptr;
  if (!closed) return Fail(Status::IoError("flush failed: " + path_));

  SnapshotBuildStats stats;
  stats.num_nodes = num_nodes_;
  stats.num_edges = num_edges;
  stats.file_bytes = cursor_;
  stats.build_seconds = timer_.ElapsedSeconds();
  SIMGRAPH_HISTOGRAM_RECORD("store.snapshot.build_seconds",
                            stats.build_seconds);
  SIMGRAPH_GAUGE_SET("store.snapshot.file_bytes",
                     static_cast<double>(stats.file_bytes));
  return stats;
}

StatusOr<SnapshotBuildStats> WriteDigraphSnapshot(const Digraph& g,
                                                  const std::string& path) {
  SnapshotWriterOptions options;
  options.weighted = g.has_weights();
  return WriteDigraphSnapshot(g, path, options);
}

StatusOr<SnapshotBuildStats> WriteDigraphSnapshot(
    const Digraph& g, const std::string& path,
    const SnapshotWriterOptions& options) {
  SnapshotWriter writer(path, g.num_nodes(), options);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    SIMGRAPH_RETURN_IF_ERROR(writer.AppendOutNode(
        u, g.OutNeighbors(u),
        options.weighted ? g.OutWeights(u) : std::span<const double>{}));
  }
  if (options.include_in_adjacency) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      SIMGRAPH_RETURN_IF_ERROR(writer.AppendInNode(u, g.InNeighbors(u)));
    }
  }
  return writer.Finalize();
}

}  // namespace store
}  // namespace simgraph
