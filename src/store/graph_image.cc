#include "store/graph_image.h"

#include <utility>

#include "util/logging.h"

namespace simgraph {
namespace store {

StatusOr<std::shared_ptr<const GraphImage>> GraphImage::Load(
    const std::string& path, const SnapshotOpenOptions& options) {
  StatusOr<std::shared_ptr<const MappedSnapshot>> snapshot =
      MappedSnapshot::Open(path, options);
  SIMGRAPH_RETURN_IF_ERROR(snapshot.status());
  StatusOr<Digraph> graph = (*snapshot)->Materialize();
  SIMGRAPH_RETURN_IF_ERROR(graph.status());

  // No make_shared: the constructor is private.
  auto image = std::shared_ptr<GraphImage>(new GraphImage());
  image->path_ = path;
  image->snapshot_ = std::move(*snapshot);
  image->graph_ = std::move(*graph);
  SIMGRAPH_LOG(Info) << "pinned graph image " << path << ": "
                     << image->num_nodes() << " nodes, "
                     << image->num_edges() << " edges, "
                     << image->file_bytes() << " mapped bytes";
  return std::shared_ptr<const GraphImage>(std::move(image));
}

}  // namespace store
}  // namespace simgraph
