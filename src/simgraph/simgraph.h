#ifndef SIMGRAPH_SIMGRAPH_SIMGRAPH_H_
#define SIMGRAPH_SIMGRAPH_SIMGRAPH_H_

/// \file
/// Umbrella header: the full public API of the SimGraph library.
///
/// Quick start:
///
///   #include "simgraph/simgraph.h"
///
///   simgraph::Dataset data = simgraph::GenerateDataset(simgraph::TinyConfig());
///   simgraph::EvalProtocol protocol =
///       simgraph::MakeProtocol(data, simgraph::ProtocolOptions{});
///   simgraph::SimGraphRecommender recommender;
///   simgraph::HarnessOptions harness;
///   harness.k = 30;
///   simgraph::EvalResult result =
///       simgraph::RunEvaluation(data, protocol, recommender, harness);

#include "analysis/distribution_fit.h"
#include "analysis/homophily.h"
#include "analysis/retweet_stats.h"
#include "baselines/bayes_recommender.h"
#include "baselines/cf_recommender.h"
#include "baselines/graphjet_recommender.h"
#include "core/bubbles.h"
#include "core/candidate_store.h"
#include "core/incremental.h"
#include "core/propagation.h"
#include "core/recommender.h"
#include "core/simgraph.h"
#include "core/simgraph_delta.h"
#include "core/simgraph_recommender.h"
#include "core/similarity.h"
#include "core/topic_similarity.h"
#include "core/update.h"
#include "dataset/cascade_generator.h"
#include "dataset/config.h"
#include "dataset/dataset.h"
#include "dataset/generator.h"
#include "dataset/interest_model.h"
#include "dataset/social_graph_generator.h"
#include "dataset/streaming_generator.h"
#include "dataset/types.h"
#include "eval/harness.h"
#include "eval/sweep.h"
#include "eval/protocol.h"
#include "graph/bfs.h"
#include "graph/digraph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/union_find.h"
#include "serve/backend.h"
#include "serve/binary_wire.h"
#include "serve/candidate_state.h"
#include "serve/delta_applier.h"
#include "serve/delta_builder.h"
#include "serve/replication_client.h"
#include "serve/replication_fanout.h"
#include "serve/replication_wire.h"
#include "serve/result_cache.h"
#include "serve/service.h"
#include "serve/serving_recommender.h"
#include "serve/shard_router.h"
#include "serve/sharded_service.h"
#include "serve/simgraph_serving_recommender.h"
#include "serve/tcp_server.h"
#include "serve/window_telemetry.h"
#include "serve/wire_protocol.h"
#include "solver/iterative_solvers.h"
#include "solver/sparse_matrix.h"
#include "store/graph_image.h"
#include "store/snapshot_format.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"
#include "util/env.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/mpmc_queue.h"
#include "util/random.h"
#include "util/stamped_set.h"
#include "util/status.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/timeseries.h"
#include "util/trace.h"

#endif  // SIMGRAPH_SIMGRAPH_SIMGRAPH_H_
