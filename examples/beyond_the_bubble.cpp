// The Section 7 extensions in action: topic-enhanced similarity,
// cold-start fallback, and information-bubble escape.
//
// Generates a platform, builds the plain and the topic-blended SimGraph,
// detects information bubbles, and shows how the escape boost changes one
// user's feed.
//
// Run: ./beyond_the_bubble

#include <iostream>

#include "simgraph/simgraph.h"

int main() {
  using namespace simgraph;

  DatasetConfig config = TinyConfig();
  config.num_users = 1500;
  config.num_tweets = 12000;
  config.base_retweet_prob = 0.8;
  const Dataset dataset = GenerateDataset(config);
  const int64_t train_end = dataset.SplitIndex(0.9);

  // --- 1. topic-enhanced similarity (future work #1) -------------------
  ProfileStore profiles(dataset, train_end);
  TopicProfileStore topics(dataset, train_end);
  SimGraphOptions plain_opts;
  plain_opts.tau = 0.002;
  plain_opts.mode = CandidateMode::kTwoHopBfs;
  const SimGraph plain =
      BuildSimGraph(dataset.follow_graph, profiles, plain_opts);
  HybridSimGraphOptions hybrid_opts;
  hybrid_opts.base = plain_opts;
  hybrid_opts.alpha = 0.3;
  const SimGraph hybrid =
      BuildHybridSimGraph(dataset.follow_graph, profiles, topics, hybrid_opts);
  std::cout << "plain SimGraph:  " << plain.graph.num_edges() << " edges, "
            << plain.NumPresentNodes() << " present users\n"
            << "hybrid (a=0.3):  " << hybrid.graph.num_edges() << " edges, "
            << hybrid.NumPresentNodes()
            << " present users  <- topic blending densifies\n\n";

  // --- 2. cold-start fallback (Section 4.1) ----------------------------
  SimGraphRecommenderOptions ropts;
  ropts.graph = plain_opts;
  ropts.cold_start_fallback = true;
  SimGraphRecommender rec(ropts);
  SIMGRAPH_CHECK_OK(rec.Train(dataset, train_end));
  for (int64_t i = train_end; i < dataset.num_retweets(); ++i) {
    rec.Observe(dataset.retweets[static_cast<size_t>(i)]);
  }
  int64_t cold = 0;
  int64_t cold_served = 0;
  const Timestamp now = dataset.EndTime();
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    if (!rec.IsColdUser(u)) continue;
    ++cold;
    if (!rec.Recommend(u, now, 5).empty()) ++cold_served;
  }
  std::cout << cold << " cold users; " << cold_served
            << " now served via their followees' feeds\n\n";

  // --- 3. bubbles and escape (future work #2) --------------------------
  const BubbleAssignment bubbles =
      DetectBubbles(rec.sim_graph().graph, BubbleOptions{});
  std::cout << bubbles.num_bubbles << " bubbles on the SimGraph; largest "
            << bubbles.LargestBubble() << " users; intra-bubble edges: "
            << TableWriter::Cell(
                   IntraBubbleEdgeFraction(rec.sim_graph().graph, bubbles))
            << "\n";
  std::vector<UserId> author_of;
  for (const Tweet& t : dataset.tweets) author_of.push_back(t.author);

  // Find a user with a reasonably full feed to demonstrate on.
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const auto feed = rec.Recommend(u, now, 10);
    if (feed.size() < 5) continue;
    std::cout << "\nuser " << u << " (bubble "
              << bubbles.bubble_of[static_cast<size_t>(u)]
              << "), locality before: "
              << TableWriter::Cell(
                     RecommendationLocality(feed, u, author_of, bubbles));
    const auto escaped =
        EscapeBubbleRescore(feed, u, author_of, bubbles, /*boost=*/0.75);
    const std::vector<ScoredTweet> top(escaped.begin(),
                                       escaped.begin() + 5);
    std::cout << ", after escape boost: "
              << TableWriter::Cell(
                     RecommendationLocality(top, u, author_of, bubbles))
              << "\n";
    break;
  }
  return 0;
}
