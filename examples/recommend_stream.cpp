// End-to-end streaming recommendation on the synthetic platform.
//
// Generates a microblogging trace, trains the SimGraph recommender on the
// oldest 90% of retweet actions, then streams the remaining actions and
// shows live recommendations for a handful of users — the paper's
// deployment scenario: fresh posts recommended before the user would have
// found them.
//
// Run: ./recommend_stream          (small, a few seconds)
//      SIMGRAPH_USERS=5000 ./recommend_stream

#include <iostream>

#include "simgraph/simgraph.h"

int main() {
  using namespace simgraph;

  DatasetConfig config = TinyConfig();
  config.num_users =
      static_cast<int32_t>(GetEnvInt64("SIMGRAPH_USERS", 2000));
  config.num_tweets = config.num_users * 8;
  config.base_retweet_prob = 0.8;
  std::cout << "Generating a synthetic platform with " << config.num_users
            << " users...\n";
  const Dataset dataset = GenerateDataset(config);
  std::cout << "  " << dataset.follow_graph.num_edges() << " follow edges, "
            << dataset.num_tweets() << " tweets, " << dataset.num_retweets()
            << " retweet actions over " << config.horizon_days << " days\n\n";

  const int64_t train_end = dataset.SplitIndex(0.9);
  SimGraphRecommenderOptions options;
  options.graph.tau = 0.002;
  options.propagation.dynamic.enabled = true;  // popularity-aware threshold
  SimGraphRecommender recommender(options);

  WallTimer train_timer;
  const Status trained = recommender.Train(dataset, train_end);
  if (!trained.ok()) {
    std::cerr << "training failed: " << trained.ToString() << "\n";
    return 1;
  }
  std::cout << "Trained in " << FormatDuration(train_timer.ElapsedSeconds())
            << ": SimGraph has " << recommender.sim_graph().NumPresentNodes()
            << " present users and "
            << recommender.sim_graph().graph.num_edges() << " edges\n\n";

  // Pick the three most active users as our demo audience.
  const std::vector<int32_t> counts = dataset.RetweetCountPerUser();
  std::vector<UserId> audience;
  for (int pick = 0; pick < 3; ++pick) {
    UserId best = 0;
    for (UserId u = 0; u < dataset.num_users(); ++u) {
      if (counts[static_cast<size_t>(u)] > counts[static_cast<size_t>(best)] &&
          std::find(audience.begin(), audience.end(), u) == audience.end()) {
        best = u;
      }
    }
    audience.push_back(best);
  }

  // Stream the test period; print the audience's feeds once per week.
  WallTimer stream_timer;
  int64_t events = 0;
  Timestamp next_report =
      dataset.retweets[static_cast<size_t>(train_end)].time;
  for (int64_t i = train_end; i < dataset.num_retweets(); ++i) {
    const RetweetEvent& e = dataset.retweets[static_cast<size_t>(i)];
    if (e.time >= next_report) {
      std::cout << "--- day " << e.time / kSecondsPerDay << " ---\n";
      for (UserId u : audience) {
        const auto recs = recommender.Recommend(u, e.time, 3);
        std::cout << "  user " << u << " top-3:";
        if (recs.empty()) std::cout << " (nothing fresh)";
        for (const auto& st : recs) {
          std::cout << " tweet#" << st.tweet << " (score "
                    << TableWriter::Cell(st.score) << ")";
        }
        std::cout << "\n";
      }
      next_report = e.time + 7 * kSecondsPerDay;
    }
    recommender.Observe(e);
    ++events;
  }
  std::cout << "\nStreamed " << events << " retweets in "
            << FormatDuration(stream_timer.ElapsedSeconds()) << " ("
            << recommender.num_propagations() << " propagation runs, "
            << FormatDuration(stream_timer.ElapsedSeconds() /
                              static_cast<double>(std::max<int64_t>(1, events)))
            << " per message)\n";
  return 0;
}
