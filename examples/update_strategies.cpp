// Keeping the SimGraph fresh: the four update strategies of Figure 16.
//
// The similarity graph is built after 90% of the trace; the last 10% then
// streams in. We compare recommending with (a) a graph rebuilt from
// scratch at 95%, (b) the stale 90% graph, (c) the crossfold refresh and
// (d) a weights-only update, counting hits over the final 5% of actions.
//
// Run: ./update_strategies

#include <iostream>

#include "simgraph/simgraph.h"

int main() {
  using namespace simgraph;

  DatasetConfig config = TinyConfig();
  config.num_users = 2000;
  config.num_tweets = 16000;
  config.horizon_days = 60;
  config.base_retweet_prob = 0.8;
  const Dataset dataset = GenerateDataset(config);

  const int64_t old_end = dataset.SplitIndex(0.90);
  const int64_t new_end = dataset.SplitIndex(0.95);

  // Hits are counted over the last 5%: the protocol trains at 95% and the
  // strategy decides how the similarity graph got to that point.
  ProtocolOptions popts;
  popts.train_fraction = 0.95;
  popts.users_per_class = 150;
  popts.low_max = 3;
  popts.moderate_max = 12;
  const EvalProtocol protocol = MakeProtocol(dataset, popts);

  SimGraphOptions gopts;
  gopts.tau = 0.002;
  HarnessOptions hopts;
  hopts.k = 30;

  TableWriter table("Figure 16: hits over the last 5% by update strategy");
  table.SetHeader({"strategy", "simgraph edges", "hits", "F1",
                   "graph build time"});
  for (UpdateStrategy strategy :
       {UpdateStrategy::kFromScratch, UpdateStrategy::kOldSimGraph,
        UpdateStrategy::kCrossfold, UpdateStrategy::kWeightUpdate}) {
    // Time the strategy's graph build alone, then evaluate hits through
    // the standard harness (whose Train applies the same strategy).
    WallTimer build_timer;
    const SimGraph graph =
        BuildWithStrategy(strategy, dataset, old_end, new_end, gopts);
    const double build_seconds = build_timer.ElapsedSeconds();

    SimGraphRecommenderOptions ropts;
    ropts.graph = gopts;
    UpdateStrategyRecommender recommender(strategy, old_end, ropts);
    const EvalResult result =
        RunEvaluation(dataset, protocol, recommender, hopts);
    table.AddRow({std::string(UpdateStrategyName(strategy)),
                  TableWriter::Cell(graph.graph.num_edges()),
                  TableWriter::Cell(result.hits_total),
                  TableWriter::Cell(result.f1),
                  FormatDuration(build_seconds)});
  }
  table.Print(std::cout);
  std::cout << "Expected shape (paper): from-scratch is best, crossfold "
               "tracks it closely at lower cost,\nold and weights-updated "
               "graphs overlap below them.\n";
  return 0;
}
