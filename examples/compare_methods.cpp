// Head-to-head comparison of the four recommenders of Section 6 —
// SimGraph, collaborative filtering, GraphJet and Bayesian inference —
// under the paper's evaluation protocol, at one daily budget k.
//
// Run: ./compare_methods            (k = 30)
//      SIMGRAPH_K=100 ./compare_methods

#include <iostream>
#include <memory>

#include "simgraph/simgraph.h"

int main() {
  using namespace simgraph;

  DatasetConfig config = TinyConfig();
  config.num_users = 2500;
  config.num_tweets = 20000;
  config.horizon_days = 60;
  config.base_retweet_prob = 0.8;
  const Dataset dataset = GenerateDataset(config);

  ProtocolOptions popts;
  popts.users_per_class = 150;
  popts.low_max = 3;
  popts.moderate_max = 12;
  const EvalProtocol protocol = MakeProtocol(dataset, popts);
  std::cout << "Panel: " << protocol.low_users.size() << " low / "
            << protocol.moderate_users.size() << " moderate / "
            << protocol.intensive_users.size() << " intensive users; "
            << dataset.num_retweets() - protocol.train_end
            << " test actions\n\n";

  HarnessOptions hopts;
  hopts.k = static_cast<int32_t>(GetEnvInt64("SIMGRAPH_K", 30));

  SimGraphRecommenderOptions sopts;
  sopts.graph.tau = 0.002;
  std::vector<std::unique_ptr<Recommender>> methods;
  methods.push_back(std::make_unique<SimGraphRecommender>(sopts));
  methods.push_back(std::make_unique<CfRecommender>());
  methods.push_back(std::make_unique<GraphJetRecommender>());
  methods.push_back(std::make_unique<BayesRecommender>());

  TableWriter table("Method comparison at k = " +
                    std::to_string(hopts.k));
  table.SetHeader({"method", "hits", "recs/day/user", "precision", "recall",
                   "F1", "hit popularity", "advance (h)", "train", "stream"});
  std::vector<EvalResult> results;
  for (auto& method : methods) {
    std::cout << "Evaluating " << method->name() << "...\n";
    results.push_back(RunEvaluation(dataset, protocol, *method, hopts));
    const EvalResult& r = results.back();
    table.AddRow({r.method, TableWriter::Cell(r.hits_total),
                  TableWriter::Cell(r.avg_recs_per_day_user),
                  TableWriter::Cell(r.precision),
                  TableWriter::Cell(r.recall), TableWriter::Cell(r.f1),
                  TableWriter::Cell(r.avg_hit_popularity),
                  TableWriter::Cell(r.avg_advance_seconds / 3600.0),
                  FormatDuration(r.train_seconds),
                  FormatDuration(r.observe_seconds + r.recommend_seconds)});
  }
  std::cout << "\n";
  table.Print(std::cout);

  std::cout << "Hit overlap with SimGraph (Figure 13's sigma):\n";
  for (size_t i = 1; i < results.size(); ++i) {
    std::cout << "  sigma(" << results[i].method << ") = "
              << TableWriter::Cell(HitOverlapRatio(results[0], results[i]))
              << "\n";
  }
  return 0;
}
