// Quickstart: the paper's Figure 6 worked example, end to end.
//
// Builds the 5-node similarity graph of Section 4.2, propagates a retweet
// by user x through it (Examples 4.3 / 5.1), and shows that the iterative
// algorithm and the Section 5.2 linear system agree.
//
// Run: ./quickstart

#include <iostream>

#include "simgraph/simgraph.h"

int main() {
  using namespace simgraph;

  // Figure 6: u -> v (0.3), u -> w (0.5), w -> x (0.5), w -> y (0.4).
  // An edge a -> b means "b is an influential user of a".
  enum : NodeId { kU = 0, kV = 1, kW = 2, kX = 3, kY = 4 };
  GraphBuilder builder(5);
  builder.AddEdge(kU, kV, 0.3);
  builder.AddEdge(kU, kW, 0.5);
  builder.AddEdge(kW, kX, 0.5);
  builder.AddEdge(kW, kY, 0.4);
  SimGraph sim_graph;
  sim_graph.graph = builder.Build(/*weighted=*/true);

  std::cout << "Figure 6 similarity graph: " << sim_graph.graph.num_nodes()
            << " nodes, " << sim_graph.graph.num_edges() << " edges\n\n";

  // User x likes/shares tweet t1 -> p(x, t1) = 1. Propagate.
  Propagator propagator(sim_graph);
  const PropagationResult result =
      propagator.Propagate({kX}, /*popularity=*/1, PropagationOptions{});

  const char* names = "uvwxy";
  std::cout << "Iterative propagation (Algorithm 1), " << result.iterations
            << " iterations, converged=" << std::boolalpha
            << result.converged << ":\n";
  for (const UserScore& us : result.scores) {
    std::cout << "  p(" << names[us.user] << ", t1) = " << us.score << "\n";
  }
  std::cout << "  (paper, Example 5.1: p(w, t1) = 0.25, p(u, t1) = 0.0625)\n\n";

  // The same scores via the Section 5.2 linear system A p = b.
  std::vector<UserId> users;
  std::vector<double> b;
  const SparseMatrix a = BuildPropagationSystem(sim_graph, {kX}, &users, &b);
  std::cout << "Linear system: " << a.size() << " rows, diagonally dominant="
            << a.IsDiagonallyDominant()
            << ", ||A||_jacobi=" << a.JacobiIterationNorm() << "\n";

  SolverOptions sopts;
  sopts.method = SolverMethod::kGaussSeidel;
  const StatusOr<SolverResult> solved = Solve(a, b, sopts);
  if (!solved.ok()) {
    std::cerr << "solver failed: " << solved.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Gauss-Seidel solution (" << solved->iterations
            << " iterations):\n";
  for (size_t i = 0; i < users.size(); ++i) {
    std::cout << "  p(" << names[users[i]] << ", t1) = "
              << solved->solution[i] << "\n";
  }
  std::cout << "\nBoth formulations agree, as Section 5.2 requires.\n";
  return 0;
}
